"""Experiment specification model: single cells and cross-product sweeps.

Every experiment in the paper — Table 1's placer comparison, Table 2's
mapper comparison, the m-sensitivity sweep — is a cross-product of
mappers × placers × fabrics × benchmark circuits × seed counts.  This module
gives that cross-product a declarative, hashable form:

* :class:`FabricCell` — the fabric axis as plain parameters (not a live
  :class:`~repro.fabric.fabric.Fabric`), so specs can be pickled to worker
  processes and hashed into cache keys.
* :class:`ExperimentSpec` — one cell of the grid: which circuit, which
  mapper, which placer, how many seeds, on which fabric.
* :class:`Sweep` — the grid itself; :meth:`Sweep.expand` produces the
  de-duplicated list of cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qecc import BENCHMARK_NAMES
from repro.errors import MappingError, ReproError
from repro.fabric.builder import FabricSpec, build_fabric, quale_fabric
from repro.fabric.fabric import Fabric
from repro.mapper.options import MapperOptions
from repro.pipeline.circuits import resolve_circuit
from repro.pipeline.mappers import MAPPERS, resolve_mapper
from repro.pipeline.placers import PLACERS


#: Built-in mapper names at import time.  Validation goes through the live
#: :data:`repro.pipeline.MAPPERS` registry, so mappers registered *after*
#: import are accepted too; this snapshot only feeds help strings.
MAPPER_NAMES: tuple[str, ...] = MAPPERS.names()

#: Built-in placer names at import time (see :data:`repro.pipeline.PLACERS`).
PLACER_NAMES: tuple[str, ...] = PLACERS.names()

#: Built-in mappers whose placement strategy is fixed: they take no placer /
#: seed axes, so those axes collapse during normalisation.  Mappers outside
#: this set — QSPR and any registered plugin — receive the full axes, since
#: a plugin mapper may honour every :class:`MapperOptions` knob.
PLACERLESS_MAPPERS: frozenset[str] = frozenset({"quale", "qpos", "ideal"})

#: Bump when the semantics of a cached record change; part of every cache key.
CACHE_SCHEMA = 2


@dataclass(frozen=True)
class FabricCell:
    """The fabric axis of a sweep, as constructor parameters.

    Keeping the fabric declarative (rather than holding a built
    :class:`~repro.fabric.fabric.Fabric`) makes specs picklable for the
    process pool and lets the cache key cover the exact geometry.

    Example::

        >>> FabricCell.quale().label
        'quale-12x22c3'
        >>> FabricCell(junction_rows=4, junction_cols=4).label
        '4x4c3'
    """

    junction_rows: int = 12
    junction_cols: int = 22
    channel_length: int = 3
    traps_per_channel: int = 2

    @classmethod
    def quale(cls) -> "FabricCell":
        """The 45×85-cell fabric used by all of the paper's experiments.

        Example::

            >>> FabricCell.quale().junction_cols
            22
        """
        return cls(junction_rows=12, junction_cols=22, channel_length=3, traps_per_channel=2)

    @property
    def is_quale(self) -> bool:
        """Whether these parameters describe the paper's QUALE fabric."""
        return self == FabricCell.quale()

    @property
    def label(self) -> str:
        """Short name used in result records and report columns.

        Example::

            >>> FabricCell(junction_rows=2, junction_cols=3, channel_length=2).label
            '2x3c2'
        """
        geometry = f"{self.junction_rows}x{self.junction_cols}c{self.channel_length}"
        return f"quale-{geometry}" if self.is_quale else geometry

    def build(self) -> Fabric:
        """Construct the described :class:`~repro.fabric.fabric.Fabric`.

        Example::

            >>> FabricCell(junction_rows=2, junction_cols=3).build().num_traps > 0
            True
        """
        if self.is_quale:
            return quale_fabric()
        return build_fabric(
            FabricSpec(
                name=self.label,
                junction_rows=self.junction_rows,
                junction_cols=self.junction_cols,
                channel_length=self.channel_length,
                traps_per_channel=self.traps_per_channel,
            )
        )


#: Shared default fabric (frozen, so safe as a dataclass default).
QUALE_FABRIC_CELL = FabricCell.quale()


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an experiment grid.

    Attributes:
        circuit: A registered circuit name (e.g. ``"[[5,1,3]]"``) or the path
            of a QASM file (resolved through :data:`repro.pipeline.CIRCUITS`).
        mapper: A mapper-registry name — ``"qspr"``, ``"quale"``, ``"qpos"``,
            ``"ideal"`` or any plugin in :data:`repro.pipeline.MAPPERS`.
        placer: QSPR's placement algorithm — any name registered in
            :data:`repro.pipeline.PLACERS` (``"mvfb"``, ``"monte-carlo"``,
            ``"center"`` or a plugin); ``None`` for mappers that have no
            placer choice.
        num_seeds: MVFB's seed count ``m``.  For the Monte-Carlo placer this
            doubles as the default number of placement runs ``m'`` when
            ``num_placements`` is not given.
        num_placements: Monte-Carlo placement runs ``m'`` (overrides the
            ``num_seeds`` default).
        random_seed: Seed of all randomised placement decisions.
        fabric: Target fabric parameters.

    Example::

        >>> spec = ExperimentSpec(circuit="[[5,1,3]]", mapper="qspr", placer="center")
        >>> spec.config_label()
        'qspr/center'
    """

    circuit: str
    mapper: str = "qspr"
    placer: str | None = "mvfb"
    num_seeds: int = 3
    num_placements: int | None = None
    random_seed: int = 0
    fabric: FabricCell = QUALE_FABRIC_CELL

    def __post_init__(self) -> None:
        MAPPERS.resolve(self.mapper, error=MappingError)
        if self.uses_placer_axes:
            if self.placer is None:
                raise MappingError(
                    f"mapper {self.mapper!r} requires a placer; "
                    f"known placers: {', '.join(PLACERS.names())}"
                )
            PLACERS.resolve(self.placer, error=MappingError)
            if self.num_seeds < 1:
                raise MappingError("num_seeds must be at least 1")

    @property
    def uses_placer_axes(self) -> bool:
        """Whether this cell's mapper consumes the placer/seed axes.

        True for ``"qspr"`` and for every plugin mapper; false only for the
        built-in presets with a fixed placement strategy
        (:data:`PLACERLESS_MAPPERS`).
        """
        return self.mapper not in PLACERLESS_MAPPERS

    @property
    def is_benchmark(self) -> bool:
        """Whether :attr:`circuit` names a built-in QECC benchmark."""
        return self.circuit in BENCHMARK_NAMES

    @property
    def is_registered_circuit(self) -> bool:
        """Whether :attr:`circuit` names any registered circuit (QECC or plugin)."""
        from repro.pipeline.circuits import CIRCUITS

        return self.circuit in CIRCUITS

    def normalized(self) -> "ExperimentSpec":
        """A copy with axes that do not affect this mapper canonicalised.

        QUALE, QPOS and the ideal baseline are deterministic and have no
        placer, seed count or random seed; collapsing those axes lets
        :meth:`Sweep.expand` de-duplicate the grid and gives every
        equivalent cell the same cache key.

        Example::

            >>> a = ExperimentSpec("[[5,1,3]]", mapper="quale", placer="mvfb", num_seeds=9)
            >>> b = ExperimentSpec("[[5,1,3]]", mapper="quale", placer="center", num_seeds=2)
            >>> a.normalized() == b.normalized()
            True
        """
        if self.uses_placer_axes:
            if self.placer == "monte-carlo":
                return self
            if self.placer == "center":
                # Center placement is deterministic: no seeds, no extra runs.
                return replace(self, num_seeds=1, num_placements=None, random_seed=0)
            if self.placer == "mvfb":
                # MVFB ignores num_placements.
                return replace(self, num_placements=None)
            # Custom placers: nothing is known about which axes they read,
            # so keep every axis (conservative — no cache-key collisions).
            return self
        return replace(
            self, placer=None, num_seeds=1, num_placements=None, random_seed=0
        )

    def config_label(self) -> str:
        """Short ``mapper[/placer]`` label used as a report column header.

        Example::

            >>> ExperimentSpec("[[5,1,3]]", mapper="ideal").config_label()
            'ideal'
        """
        if self.mapper == "qspr" and self.placer is not None:
            return f"{self.mapper}/{self.placer}"
        return self.mapper

    # ------------------------------------------------------------------
    # Construction of the live objects.

    def build_circuit(self) -> QuantumCircuit:
        """Load the benchmark circuit or parse the QASM file.

        Resolution goes through :data:`repro.pipeline.CIRCUITS`: registered
        circuit names (the QECC suite and any plugins) take precedence,
        anything else is treated as a QASM path.

        Example::

            >>> ExperimentSpec("[[5,1,3]]").build_circuit().num_qubits
            5
        """
        if not self.is_registered_circuit and not Path(self.circuit).exists():
            raise ReproError(f"QASM file not found: {self.circuit}")
        return resolve_circuit(self.circuit)

    def build_fabric(self) -> Fabric:
        """Construct the target fabric (see :meth:`FabricCell.build`)."""
        return self.fabric.build()

    def mapper_options(self) -> MapperOptions:
        """The :class:`~repro.mapper.options.MapperOptions` of this cell.

        Available for every mapper that consumes the placer/seed axes
        (:attr:`uses_placer_axes`) — QSPR and plugin mappers alike.

        Example::

            >>> spec = ExperimentSpec("[[5,1,3]]", placer="monte-carlo", num_seeds=4)
            >>> spec.mapper_options().num_placements
            4
        """
        if not self.uses_placer_axes:
            raise MappingError(f"mapper {self.mapper!r} takes no options")
        num_placements = self.num_placements
        if self.placer == "monte-carlo" and num_placements is None:
            num_placements = self.num_seeds
        return MapperOptions(
            placer=self.placer,
            num_seeds=self.num_seeds,
            num_placements=num_placements,
            random_seed=self.random_seed,
        )

    def build_mapper(self):
        """Instantiate this cell's mapper through the mapper registry.

        Placer-driven mappers (QSPR and plugins) receive the cell's full
        :meth:`mapper_options`; the fixed built-in presets receive ``None``.

        Example::

            >>> type(ExperimentSpec("[[5,1,3]]", mapper="qpos").build_mapper()).__name__
            'QposMapper'
        """
        options = self.mapper_options() if self.uses_placer_axes else None
        return resolve_mapper(self.mapper, options)

    # ------------------------------------------------------------------
    # Serialisation and content keying.

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`).

        Example::

            >>> ExperimentSpec.from_dict(ExperimentSpec("[[5,1,3]]").to_dict()).circuit
            '[[5,1,3]]'
        """
        record = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "fabric"}
        record["fabric"] = {
            f.name: getattr(self.fabric, f.name) for f in fields(self.fabric)
        }
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(record)
        data["fabric"] = FabricCell(**data.get("fabric", {}))
        return cls(**data)

    def cache_key(self) -> str:
        """Content hash identifying this cell's result.

        The key covers the normalised spec, the fabric geometry and — for
        QASM-file circuits — the *content* of the file (not its path), so
        editing the circuit invalidates the cache while moving the file does
        not.

        Example::

            >>> key = ExperimentSpec("[[5,1,3]]").cache_key()
            >>> len(key), key == ExperimentSpec("[[5,1,3]]").cache_key()
            (64, True)
        """
        spec = self.normalized()
        payload = spec.to_dict()
        payload["schema"] = CACHE_SCHEMA
        if not spec.is_registered_circuit:
            path = Path(spec.circuit)
            if path.exists():
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
            else:  # keying a missing file is fine; running it will fail later
                digest = "missing"
            payload["circuit"] = {"qasm_sha256": digest}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class Sweep:
    """A cross-product experiment grid.

    The axes mirror the paper's evaluation: circuits × mappers × placers ×
    fabrics × seed counts × random seeds.  Axes that do not apply to a
    mapper (e.g. placers for QUALE) are collapsed during expansion, so the
    grid never runs the same configuration twice.

    Example::

        >>> sweep = Sweep(circuits=("[[5,1,3]]", "[[7,1,3]]"),
        ...               mappers=("qspr", "quale"), placers=("mvfb", "center"))
        >>> len(sweep.expand())  # 2*(2 placers + 1 deduped quale cell)
        6
    """

    circuits: tuple[str, ...]
    mappers: tuple[str, ...] = ("qspr",)
    placers: tuple[str, ...] = ("mvfb",)
    num_seeds: tuple[int, ...] = (3,)
    random_seeds: tuple[int, ...] = (0,)
    fabrics: tuple[FabricCell, ...] = (QUALE_FABRIC_CELL,)

    def __post_init__(self) -> None:
        for name, axis in (
            ("circuits", self.circuits),
            ("mappers", self.mappers),
            ("placers", self.placers),
            ("num_seeds", self.num_seeds),
            ("random_seeds", self.random_seeds),
            ("fabrics", self.fabrics),
        ):
            if not axis:
                raise MappingError(f"sweep axis {name!r} must not be empty")

    @property
    def size(self) -> int:
        """Number of distinct cells (after de-duplication).

        Example::

            >>> Sweep(circuits=("[[5,1,3]]",), mappers=("ideal",)).size
            1
        """
        return len(self.expand())

    def expand(self) -> tuple[ExperimentSpec, ...]:
        """The grid's distinct cells, in deterministic axis order.

        Example::

            >>> cells = Sweep(circuits=("[[5,1,3]]",), mappers=("qspr", "ideal")).expand()
            >>> [cell.mapper for cell in cells]
            ['qspr', 'ideal']
        """
        cells: dict[ExperimentSpec, None] = {}
        for circuit in self.circuits:
            for fabric in self.fabrics:
                for mapper in self.mappers:
                    for placer in self.placers:
                        for m in self.num_seeds:
                            for seed in self.random_seeds:
                                spec = ExperimentSpec(
                                    circuit=circuit,
                                    mapper=mapper,
                                    placer=(
                                        placer if mapper not in PLACERLESS_MAPPERS else None
                                    ),
                                    num_seeds=m,
                                    random_seed=seed,
                                    fabric=fabric,
                                ).normalized()
                                cells.setdefault(spec, None)
        return tuple(cells)

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`).

        Example::

            >>> Sweep.from_dict(Sweep(circuits=("ghz",)).to_dict()).circuits
            ('ghz',)
        """
        record = {
            f.name: list(getattr(self, f.name)) for f in fields(self) if f.name != "fabrics"
        }
        record["fabrics"] = [
            {f.name: getattr(fabric, f.name) for f in fields(fabric)}
            for fabric in self.fabrics
        ]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Sweep":
        """Rebuild a sweep from :meth:`to_dict` output (e.g. an API payload).

        Unknown keys raise :class:`~repro.errors.MappingError` so malformed
        service submissions fail at enqueue time, not at execution time.
        """
        data = dict(record)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise MappingError(
                f"unknown sweep axes: {', '.join(unknown)} (known: {', '.join(sorted(known))})"
            )
        if "fabrics" in data:
            data["fabrics"] = tuple(
                fabric if isinstance(fabric, FabricCell) else FabricCell(**fabric)
                for fabric in data["fabrics"]
            )
        for name in ("circuits", "mappers", "placers"):
            if name in data:
                data[name] = parse_axis(data[name])
        for name in ("num_seeds", "random_seeds"):
            if name in data:
                axis = data[name]
                if isinstance(axis, str):  # "2,5" — same style as the name axes
                    axis = parse_axis(axis)
                elif isinstance(axis, (int, float)):
                    axis = (axis,)
                data[name] = tuple(int(value) for value in axis)
        return cls(**data)


def parse_axis(text: str | Sequence[str]) -> tuple[str, ...]:
    """Split a comma-separated CLI axis value into a tuple.

    Commas inside brackets do not split, so QECC benchmark names survive::

        >>> parse_axis("qspr, quale")
        ('qspr', 'quale')
        >>> parse_axis("[[5,1,3]],[[7,1,3]]")
        ('[[5,1,3]]', '[[7,1,3]]')
    """
    if not isinstance(text, str):
        return tuple(text)
    parts: list[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "," and depth == 0:
            parts.append(current)
            current = ""
            continue
        depth += {"[": 1, "]": -1}.get(char, 0)
        current += char
    parts.append(current)
    return tuple(part.strip() for part in parts if part.strip())
