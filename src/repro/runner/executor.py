"""Batch execution of experiment grids.

:func:`run_sweep` takes a :class:`~repro.runner.spec.Sweep` (or an explicit
list of cells), consults the optional :class:`~repro.runner.cache.ResultCache`
and executes the remaining cells either sequentially or on a
``concurrent.futures`` process pool.  Results always come back in grid order,
and — because every mapper is deterministic for a fixed spec — parallel and
sequential executions produce identical latency tables.

If the platform cannot start worker processes (restricted sandboxes, missing
semaphores), the executor transparently falls back to the deterministic
sequential path instead of failing the sweep.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.runner.cache import ResultCache
from repro.runner.results import CellResult
from repro.runner.spec import ExperimentSpec, Sweep

#: Optional per-cell progress callback: ``callback(index, total, result)``.
ProgressCallback = Callable[[int, int, CellResult], None]


def execute_cell(spec: ExperimentSpec) -> CellResult:
    """Execute one experiment cell and summarise it.

    This is the unit of work of the process pool; it builds the circuit,
    fabric and mapper from the declarative spec (each resolved through the
    :mod:`repro.pipeline` registries), so it only needs the spec itself to
    cross the process boundary.

    Example::

        >>> from repro.runner import ExperimentSpec, FabricCell
        >>> cell = execute_cell(ExperimentSpec(
        ...     "[[5,1,3]]", placer="center",
        ...     fabric=FabricCell(junction_rows=4, junction_cols=4)))
        >>> cell.latency > cell.ideal_latency > 0
        True
    """
    circuit = spec.build_circuit()
    fabric = spec.build_fabric()
    mapper = spec.build_mapper()
    result = mapper.map(circuit, fabric)
    return CellResult.from_mapping(spec, result)


@dataclass
class SweepRun:
    """Outcome of one :func:`run_sweep` invocation.

    Attributes:
        specs: The grid cells, in execution (grid) order.
        results: One :class:`~repro.runner.results.CellResult` per cell, in
            the same order.
        executed: Cells actually mapped in this run.
        cached: Cells served from the result cache.
        wall_seconds: Wall-clock duration of the whole sweep.

    Example::

        >>> run = SweepRun(specs=(), results=[])
        >>> run.total
        0
    """

    specs: tuple[ExperimentSpec, ...]
    results: list[CellResult]
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        """Number of grid cells in the sweep."""
        return len(self.specs)

    def summary(self) -> str:
        """One-line account of the run (printed by ``qspr-map sweep``).

        Example::

            >>> SweepRun(specs=(), results=[], executed=0, cached=0).summary()
            'mapped 0 cells: 0 executed, 0 from cache (0.0 s)'
        """
        return (
            f"mapped {self.total} cells: {self.executed} executed, "
            f"{self.cached} from cache ({self.wall_seconds:.1f} s)"
        )


def run_sweep(
    experiment: Sweep | Sequence[ExperimentSpec],
    *,
    cache: ResultCache | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
) -> SweepRun:
    """Execute every cell of ``experiment``, reusing cached results.

    Args:
        experiment: A :class:`~repro.runner.spec.Sweep` or an explicit
            sequence of :class:`~repro.runner.spec.ExperimentSpec` cells.
        cache: Optional result cache; hits skip execution, misses are stored.
        workers: Worker processes for the uncached cells; ``1`` runs the
            deterministic sequential path, ``0`` uses one worker per CPU.
        progress: Optional callback invoked as each cell completes (cache
            hits first, then executed cells — not necessarily in grid order
            when ``workers`` > 1).

    Returns:
        A :class:`SweepRun` with results in grid order.

    Example::

        >>> from repro.runner import ExperimentSpec, FabricCell, Sweep
        >>> tiny = FabricCell(junction_rows=4, junction_cols=4)
        >>> sweep = Sweep(circuits=("[[5,1,3]]",), placers=("center",), fabrics=(tiny,))
        >>> run = run_sweep(sweep)
        >>> run.executed, run.cached
        (1, 0)
    """
    specs = experiment.expand() if isinstance(experiment, Sweep) else tuple(experiment)
    start = time.perf_counter()
    total = len(specs)
    results: dict[int, CellResult] = {}
    pending: list[int] = []

    for index, spec in enumerate(specs):
        hit = cache.load(spec) if cache is not None else None
        if hit is not None:
            results[index] = hit
            if progress is not None:
                progress(index, total, hit)
        else:
            pending.append(index)

    for index, result in _execute_pending(specs, pending, workers):
        results[index] = result
        if cache is not None:
            cache.store(specs[index], result)
        if progress is not None:
            progress(index, total, result)

    return SweepRun(
        specs=specs,
        results=[results[index] for index in range(total)],
        executed=len(pending),
        cached=total - len(pending),
        wall_seconds=time.perf_counter() - start,
    )


def _execute_pending(
    specs: Sequence[ExperimentSpec], pending: Sequence[int], workers: int
) -> Iterator[tuple[int, CellResult]]:
    """Yield ``(grid index, result)`` pairs as the pending cells complete.

    Uses a process pool when ``workers`` allows it, falling back to the
    deterministic sequential path only when the pool itself cannot run
    (restricted sandboxes, broken workers) — errors raised *by a cell* are
    never swallowed; they propagate to the caller.
    """
    done: set[int] = set()
    if workers != 1 and len(pending) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers if workers > 0 else None) as pool:
                cells = [specs[index] for index in pending]
                for index, result in zip(pending, pool.map(execute_cell, cells)):
                    done.add(index)
                    yield index, result
            return
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            warnings.warn(
                f"process pool unavailable ({exc}); falling back to sequential execution",
                RuntimeWarning,
                stacklevel=2,
            )
    for index in pending:
        if index not in done:
            yield index, execute_cell(specs[index])
