"""Batch execution of experiment grids.

:func:`run_sweep` takes a :class:`~repro.runner.spec.Sweep` (or an explicit
list of cells), consults the optional :class:`~repro.runner.cache.ResultCache`
and executes the remaining cells either sequentially or on a
``concurrent.futures`` process pool.  Results always come back in grid order,
and — because every mapper is deterministic for a fixed spec — parallel and
sequential executions produce identical latency tables.

If the platform cannot start worker processes (restricted sandboxes, missing
semaphores), the executor transparently falls back to the deterministic
sequential path instead of failing the sweep.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.runner.cache import ResultCache
from repro.runner.results import CellResult
from repro.runner.spec import ExperimentSpec, Sweep

#: Optional per-cell progress callback: ``callback(index, total, result)``.
ProgressCallback = Callable[[int, int, CellResult], None]


def map_spec(
    spec: ExperimentSpec,
    *,
    fabric=None,
    shared_route_cache: bool = False,
    observer=None,
):
    """Run one declarative spec end to end and return the full mapping result.

    This is the shared task-execution core of both the sweep runner and the
    job-service workers: it builds the circuit, fabric and mapper from the
    spec (each resolved through the :mod:`repro.pipeline` registries) and
    returns the live :class:`~repro.mapper.result.MappingResult` — including
    ``stage_seconds`` and routing counters that the flat
    :class:`~repro.runner.results.CellResult` summary does not carry.

    Args:
        spec: The experiment cell to execute.
        fabric: Optional pre-built :class:`~repro.fabric.fabric.Fabric` for
            ``spec.fabric``.  Fabrics are immutable and memoise their routing
            graphs, so a long-lived worker can pass the same fabric to every
            job that targets the same geometry and pay the graph-compilation
            cost once.
        shared_route_cache: Opt the run into the cross-job idle-route store
            (see :mod:`repro.routing.shared_cache`).  Pointless without a
            long-lived ``fabric`` — the store is memoised on the fabric
            instance — which is why the sweep runner leaves it off and the
            service workers turn it on.
        observer: Optional :class:`~repro.pipeline.context.PipelineObserver`
            receiving stage start/finish callbacks.  Passed through only to
            mappers whose ``map`` accepts it (the reference
            :class:`~repro.pipeline.mappers.IdealMapper` does not).
    """
    circuit = spec.build_circuit()
    if fabric is None:
        fabric = spec.build_fabric()
    mapper = spec.build_mapper(shared_route_cache=shared_route_cache)
    if observer is not None:
        from repro.pipeline.facade import _accepts_observer

        if _accepts_observer(mapper.map):
            return mapper.map(circuit, fabric, observer=observer)
    return mapper.map(circuit, fabric)


def execute_cell(spec: ExperimentSpec) -> CellResult:
    """Execute one experiment cell and summarise it.

    This is the unit of work of the process pool; thanks to :func:`map_spec`
    it only needs the picklable spec itself to cross the process boundary.

    Example::

        >>> from repro.runner import ExperimentSpec, FabricCell
        >>> cell = execute_cell(ExperimentSpec(
        ...     "[[5,1,3]]", placer="center",
        ...     fabric=FabricCell(junction_rows=4, junction_cols=4)))
        >>> cell.latency > cell.ideal_latency > 0
        True
    """
    return CellResult.from_mapping(spec, map_spec(spec))


@dataclass
class SweepRun:
    """Outcome of one :func:`run_sweep` invocation.

    Attributes:
        specs: The grid cells, in execution (grid) order.
        results: One :class:`~repro.runner.results.CellResult` per cell, in
            the same order.
        executed: Cells actually mapped in this run.
        cached: Cells served from the result cache.
        wall_seconds: Wall-clock duration of the whole sweep.
        interrupted: Whether the sweep was cut short by Ctrl-C
            (:class:`KeyboardInterrupt`).  The completed cells are still in
            :attr:`results`, so partial reports can be written.

    Example::

        >>> run = SweepRun(specs=(), results=[])
        >>> run.total
        0
    """

    specs: tuple[ExperimentSpec, ...]
    results: list[CellResult]
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    interrupted: bool = False

    @property
    def total(self) -> int:
        """Number of grid cells in the sweep."""
        return len(self.specs)

    @property
    def missing(self) -> int:
        """Cells that never produced a result (non-zero only when interrupted)."""
        return self.total - len(self.results)

    def summary(self) -> str:
        """One-line account of the run (printed by ``qspr-map sweep``).

        Example::

            >>> SweepRun(specs=(), results=[], executed=0, cached=0).summary()
            'mapped 0 cells: 0 executed, 0 from cache (0.0 s)'
        """
        line = (
            f"mapped {self.total} cells: {self.executed} executed, "
            f"{self.cached} from cache ({self.wall_seconds:.1f} s)"
        )
        if self.interrupted:
            line += f" — interrupted, {self.missing} cells not mapped"
        return line


def run_sweep(
    experiment: Sweep | Sequence[ExperimentSpec],
    *,
    cache: ResultCache | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
) -> SweepRun:
    """Execute every cell of ``experiment``, reusing cached results.

    Args:
        experiment: A :class:`~repro.runner.spec.Sweep` or an explicit
            sequence of :class:`~repro.runner.spec.ExperimentSpec` cells.
        cache: Optional result cache; hits skip execution, misses are stored.
        workers: Worker processes for the uncached cells; ``1`` runs the
            deterministic sequential path, ``0`` uses one worker per CPU.
        progress: Optional callback invoked as each cell completes (cache
            hits first, then executed cells — not necessarily in grid order
            when ``workers`` > 1).

    Returns:
        A :class:`SweepRun` with results in grid order.  A Ctrl-C during
        execution does not lose the sweep: the run comes back with
        ``interrupted=True`` and every cell completed so far, so callers can
        still write partial reports.

    Example::

        >>> from repro.runner import ExperimentSpec, FabricCell, Sweep
        >>> tiny = FabricCell(junction_rows=4, junction_cols=4)
        >>> sweep = Sweep(circuits=("[[5,1,3]]",), placers=("center",), fabrics=(tiny,))
        >>> run = run_sweep(sweep)
        >>> run.executed, run.cached
        (1, 0)
    """
    specs = experiment.expand() if isinstance(experiment, Sweep) else tuple(experiment)
    start = time.perf_counter()
    total = len(specs)
    results: dict[int, CellResult] = {}
    pending: list[int] = []

    for index, spec in enumerate(specs):
        hit = cache.load(spec) if cache is not None else None
        if hit is not None:
            results[index] = hit
            if progress is not None:
                progress(index, total, hit)
        else:
            pending.append(index)

    interrupted = False
    try:
        for index, result in _execute_pending(specs, pending, workers):
            results[index] = result
            if cache is not None:
                cache.store(specs[index], result)
            if progress is not None:
                progress(index, total, result)
    except KeyboardInterrupt:
        # Graceful Ctrl-C: keep every completed cell so the caller can still
        # write partial reports instead of losing the whole sweep.
        interrupted = True
        warnings.warn(
            "sweep interrupted; returning partial results",
            RuntimeWarning,
            stacklevel=2,
        )

    executed = sum(1 for index in pending if index in results)
    return SweepRun(
        specs=specs,
        results=[results[index] for index in range(total) if index in results],
        executed=executed,
        cached=total - len(pending),
        wall_seconds=time.perf_counter() - start,
        interrupted=interrupted,
    )


def _execute_pending(
    specs: Sequence[ExperimentSpec], pending: Sequence[int], workers: int
) -> Iterator[tuple[int, CellResult]]:
    """Yield ``(grid index, result)`` pairs as the pending cells complete.

    Uses a process pool when ``workers`` allows it, falling back to the
    deterministic sequential path only when the pool itself cannot run
    (restricted sandboxes, broken workers) — errors raised *by a cell* are
    never swallowed; they propagate to the caller.
    """
    done: set[int] = set()
    if workers != 1 and len(pending) > 1:
        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers if workers > 0 else None)
            cells = [specs[index] for index in pending]
            for index, result in zip(pending, pool.map(execute_cell, cells)):
                done.add(index)
                yield index, result
            pool.shutdown()
            return
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            warnings.warn(
                f"process pool unavailable ({exc}); falling back to sequential execution",
                RuntimeWarning,
                stacklevel=2,
            )
        except BaseException:
            # The consumer abandoned us (Ctrl-C closes the generator): cancel
            # every not-yet-started cell instead of silently finishing the
            # whole grid inside the pool's exit handler.
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            raise
    for index in pending:
        if index not in done:
            yield index, execute_cell(specs[index])
