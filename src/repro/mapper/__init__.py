"""End-to-end mappers.

A *mapper* takes a circuit and a fabric and produces a
:class:`~repro.mapper.result.MappingResult`: the scheduled, placed and routed
realisation of the circuit together with its execution latency.

* :class:`QsprMapper` — the paper's tool: MVFB placement, priority
  scheduling, turn-aware dual-operand routing, multiplexed channels.
* :class:`QualeMapper` — the prior-art baseline (QUALE): center placement,
  ALAP scheduling, single-operand turn-oblivious routing, unit channel
  capacity.
* :class:`QposMapper` — the QPOS baseline: like QUALE but ASAP issue order
  with a dependent-count priority and congestion-aware path selection.
* :class:`IdealBaseline` — the zero-routing/zero-congestion lower bound
  (the QIDG critical path).
"""

from repro.mapper.options import MapperOptions, PlacerKind
from repro.mapper.result import MappingResult
from repro.mapper.ideal import IdealBaseline
from repro.mapper.qspr import QsprMapper
from repro.mapper.quale import QualeMapper
from repro.mapper.qpos import QposMapper

__all__ = [
    "MapperOptions",
    "PlacerKind",
    "MappingResult",
    "IdealBaseline",
    "QsprMapper",
    "QualeMapper",
    "QposMapper",
]
