"""The result of an end-to-end mapping run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapper.options import MapperOptions
from repro.placement.base import Placement
from repro.routing.compiled import RoutingCoreStats
from repro.sim.engine import InstructionRecord
from repro.sim.events import EventLoopStats
from repro.sim.trace import ControlTrace


@dataclass
class MappingResult:
    """A scheduled, placed and routed realisation of a circuit on a fabric.

    Attributes:
        circuit_name: Name of the mapped circuit.
        fabric_name: Name of the target fabric.
        mapper_name: Name of the mapper that produced the result.
        latency: Execution latency in microseconds (the paper's figure of
            merit).
        ideal_latency: The zero-routing/zero-congestion lower bound (QIDG
            critical path) for the same circuit and technology.
        schedule: Instruction indices in issue order, expressed over the
            forward circuit.
        initial_placement: Placement the (equivalent forward) execution starts
            from.
        final_placement: Where the qubits rest when the execution finishes.
        trace: Micro-command control trace of the winning pass.
        records: Per-instruction timing records of the winning pass.
        direction: ``"forward"`` or ``"backward"`` — which MVFB pass won.
        placement_runs: Number of placement runs performed by the placer.
        total_moves: Total qubit moves in the winning pass.
        total_turns: Total qubit turns in the winning pass.
        total_congestion_delay: Summed busy-queue waiting time.
        cpu_seconds: Wall-clock mapping time (all placement runs included).
        options: The options the mapper ran with.
        stage_seconds: Per-stage wall-clock breakdown of the pipeline run,
            keyed by stage name in execution order (empty for mappers that
            do not run the staged pipeline).  Dotted sub-keys such as
            ``simulate.routing`` attribute a stage's time to the routing
            core.
        routing_seconds: Wall-clock time the winning pass spent planning
            routes inside the router.
        routing_stats: Routing-core counters of the winning pass (route
            cache hits/misses, Dijkstra calls, heap pops, edge relaxations).
        event_stats: Event-loop counters of the winning pass (events
            processed, peak heap size, wake hits, skipped/executed issue
            polls).  All zero for the tick-poll loop's ``skipped_polls``; a
            tick-loop run polls at every event timestamp by construction.
    """

    circuit_name: str
    fabric_name: str
    mapper_name: str
    latency: float
    ideal_latency: float
    schedule: list[int]
    initial_placement: Placement
    final_placement: Placement
    trace: ControlTrace
    records: dict[int, InstructionRecord]
    direction: str = "forward"
    placement_runs: int = 1
    total_moves: int = 0
    total_turns: int = 0
    total_congestion_delay: float = 0.0
    cpu_seconds: float = 0.0
    options: MapperOptions = field(default_factory=MapperOptions)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    routing_seconds: float = 0.0
    routing_stats: RoutingCoreStats = field(default_factory=RoutingCoreStats)
    event_stats: EventLoopStats = field(default_factory=EventLoopStats)

    @property
    def overhead_vs_ideal(self) -> float:
        """Latency added by routing and congestion (Table 2's "difference")."""
        return self.latency - self.ideal_latency

    @property
    def overhead_ratio(self) -> float:
        """Latency relative to the ideal baseline (1.0 means no overhead)."""
        if self.ideal_latency == 0:
            return float("inf")
        return self.latency / self.ideal_latency

    def improvement_over(self, other: "MappingResult | float") -> float:
        """Percentage improvement of this result over ``other`` (Table 2).

        Args:
            other: Another result (or a raw latency) to compare against.

        Returns:
            ``100 * (other - self) / other``; positive when this result is
            faster.
        """
        other_latency = other.latency if isinstance(other, MappingResult) else float(other)
        if other_latency == 0:
            return 0.0
        return 100.0 * (other_latency - self.latency) / other_latency

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.mapper_name} mapping of {self.circuit_name} onto {self.fabric_name}",
            f"  latency           : {self.latency:.1f} us",
            f"  ideal baseline    : {self.ideal_latency:.1f} us",
            f"  routing+congestion: {self.overhead_vs_ideal:.1f} us",
            f"  winning direction : {self.direction}",
            f"  placement runs    : {self.placement_runs}",
            f"  moves / turns     : {self.total_moves} / {self.total_turns}",
            f"  congestion delay  : {self.total_congestion_delay:.1f} us",
            f"  route cache       : {self.routing_stats.cache_hits} hits / "
            f"{self.routing_stats.cache_misses} misses "
            f"({100 * self.routing_stats.cache_hit_rate:.1f}% hit rate)",
            f"  dijkstra core     : {self.routing_stats.dijkstra_calls} calls, "
            f"{self.routing_stats.heap_pops} heap pops, "
            f"{self.routing_stats.edge_relaxations} relaxations",
            f"  event loop        : {self.event_stats.events_processed} events, "
            f"{self.event_stats.issue_polls} polls "
            f"({self.event_stats.skipped_polls} skipped), "
            f"{self.event_stats.wake_hits} wakes",
            f"  mapping CPU time  : {self.cpu_seconds * 1000:.0f} ms",
            f"  options           : {self.options.describe()}",
        ]
        return "\n".join(lines)
