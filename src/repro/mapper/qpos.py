"""A QPOS-like baseline mapper.

QPOS (Metodi et al.) follows a similar flow to QUALE but, as the paper
describes in Section I:

* the *destination* operand of a two-qubit instruction stays fixed in its
  trap while the *source* operand moves to reach it;
* instructions are extracted from the QIDG in an as-soon-as-possible (ASAP)
  fashion, with the initial priority of an instruction set to the number of
  instructions that depend on it;
* path selection takes congestion into account, but not turn delays, and
  channels are not multiplexed.

The variant of reference [5] (Whitney et al.), which sets the priority to the
total delay of the dependent instructions, is available through
:func:`qpos_options` with ``path_delay_priority=True``.
"""

from __future__ import annotations

from repro.mapper.options import MapperOptions, PlacerKind
from repro.mapper.qspr import QsprMapper
from repro.routing.router import MeetingPoint
from repro.scheduling.priority import PriorityPolicy
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


def qpos_options(
    technology: TechnologyParams = PAPER_TECHNOLOGY,
    *,
    path_delay_priority: bool = False,
) -> MapperOptions:
    """The option preset that reproduces QPOS's behaviour.

    Args:
        technology: Physical machine description.
        path_delay_priority: Use the priority tweak of reference [5] (total
            delay of dependent instructions) instead of the dependent count.
    """
    priority = (
        PriorityPolicy.QPOS_PATH_DELAY if path_delay_priority else PriorityPolicy.QPOS_DEPENDENTS
    )
    return MapperOptions(
        technology=technology,
        priority_policy=priority,
        turn_aware_routing=False,
        meeting_point=MeetingPoint.DESTINATION,
        channel_capacity=1,
        trap_candidates=1,
        placer=PlacerKind.CENTER,
    )


class QposMapper(QsprMapper):
    """Prior-art baseline: QPOS's scheduling and routing over center placement."""

    name = "QPOS"

    def __init__(
        self,
        technology: TechnologyParams = PAPER_TECHNOLOGY,
        *,
        path_delay_priority: bool = False,
    ) -> None:
        super().__init__(qpos_options(technology, path_delay_priority=path_delay_priority))
