"""A QUALE-like baseline mapper.

QUALE (Balensiefer et al., the only publicly released prior tool and the
paper's comparison point) differs from QSPR in every dimension the paper
lists in Section I:

* *Placement*: center placement, independent of the QIDG structure.
* *Scheduling*: the QIDG is traversed backward and instructions are extracted
  in an as-late-as-possible (ALAP) manner.
* *Routing*: only one operand moves (the destination qubit stays in its
  trap), the path-selection graph does not model turns, and channels are not
  multiplexed (capacity 1).  QSPR's median-based meeting-trap selection and
  simultaneous dual-operand movement are exactly the routing improvements the
  paper claims over this baseline.

The original tool is a Java package that is no longer distributed; this class
re-implements its published behaviour on top of the same simulator used by
QSPR so that the two are compared under identical fabric semantics (see
DESIGN.md, substitutions).
"""

from __future__ import annotations

from repro.mapper.options import MapperOptions, PlacerKind
from repro.mapper.qspr import QsprMapper
from repro.routing.router import MeetingPoint
from repro.scheduling.priority import PriorityPolicy
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


def quale_options(technology: TechnologyParams = PAPER_TECHNOLOGY) -> MapperOptions:
    """The option preset that reproduces QUALE's behaviour."""
    return MapperOptions(
        technology=technology,
        priority_policy=PriorityPolicy.QUALE_ALAP,
        barrier_scheduling=True,
        turn_aware_routing=False,
        meeting_point=MeetingPoint.DESTINATION,
        channel_capacity=1,
        trap_candidates=1,
        placer=PlacerKind.CENTER,
    )


class QualeMapper(QsprMapper):
    """Prior-art baseline: QUALE's placement, scheduling and routing."""

    name = "QUALE"

    def __init__(self, technology: TechnologyParams = PAPER_TECHNOLOGY) -> None:
        super().__init__(quale_options(technology))
