"""The ideal baseline: zero routing and congestion delay.

Section V.A defines an ideal circuit fabric model with ``T_congestion = 0``
and ``T_routing = 0``; the execution latency of this model — the critical
path of the QIDG weighted by gate delays — is a lower bound on any placed and
routed result and is the "Baseline" column of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.qidg.analysis import critical_path_latency, longest_path_to_sink
from repro.qidg.graph import build_qidg
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


@dataclass(frozen=True)
class IdealBaselineResult:
    """Latency of the ideal (zero routing/congestion) fabric model.

    Attributes:
        circuit_name: Name of the analysed circuit.
        latency: Critical-path latency in microseconds.
        critical_path: Instruction indices along one critical path, in
            execution order.
    """

    circuit_name: str
    latency: float
    critical_path: tuple[int, ...]


class IdealBaseline:
    """Computes the ideal-baseline latency of circuits."""

    def __init__(self, technology: TechnologyParams = PAPER_TECHNOLOGY) -> None:
        self.technology = technology

    def latency(self, circuit: QuantumCircuit) -> float:
        """Ideal-baseline latency of ``circuit``."""
        return critical_path_latency(build_qidg(circuit), self.technology)

    def evaluate(self, circuit: QuantumCircuit) -> IdealBaselineResult:
        """Latency plus one witness critical path."""
        qidg = build_qidg(circuit)
        to_sink = longest_path_to_sink(qidg, self.technology)
        latency = max(to_sink.values(), default=0.0)

        # Walk the critical path greedily from the heaviest source.
        path: list[int] = []
        candidates = [n for n in qidg.sources()]
        current = max(candidates, key=lambda n: to_sink[n], default=None)
        while current is not None:
            path.append(current)
            successors = qidg.successors(current)
            current = max(successors, key=lambda n: to_sink[n], default=None)
        return IdealBaselineResult(circuit.name, latency, tuple(path))
