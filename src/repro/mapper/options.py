"""Configuration of a mapping run.

:class:`MapperOptions` gathers every knob the paper's experiments vary:
technology parameters, routing features (turn awareness, dual-operand
movement, channel capacity), the scheduling priority policy and the placer
(MVFB, Monte-Carlo or plain center placement).  The presets used by the
concrete mappers live next to the mappers themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.errors import MappingError
from repro.routing.router import MeetingPoint, RoutingPolicy
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.priority import PriorityPolicy
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


class PlacerKind(Enum):
    """The built-in placement algorithms.

    Kept for backwards compatibility and convenient literals; the canonical
    identifier of a placer is its *registry name* (the enum value), which is
    what :data:`repro.pipeline.PLACERS` is keyed by.  Custom placers have no
    enum member — pass their registry name as a plain string wherever a
    placer is selected (``MapperOptions(placer="my-placer")``).
    """

    MVFB = "mvfb"
    MONTE_CARLO = "monte-carlo"
    CENTER = "center"


@dataclass(frozen=True)
class MapperOptions:
    """All parameters of a mapping run.

    Attributes:
        technology: Physical machine description (delays, capacities).
        priority_policy: Scheduling policy selector — a
            :class:`~repro.scheduling.policies.SchedulingPolicy`, a registry
            name from :data:`repro.pipeline.SCHEDULERS` or a legacy
            :class:`PriorityPolicy` member.
        scheduler: Alias of ``priority_policy`` under its canonical name
            (what specs, sweeps and the CLI call it); takes precedence over
            ``priority_policy`` when both are given.
        barrier_scheduling: Schedule level-by-level (ALAP) before mapping, as
            the prior tools do, instead of interleaving scheduling with
            routing (QSPR).  Instructions of a level only issue after every
            instruction of earlier levels finished.
        turn_aware_routing: Model turns during path selection (QSPR feature).
        meeting_point: How the meeting trap of a two-qubit gate is chosen —
            median of the operands (QSPR), the destination operand's trap
            (QPOS) or the free trap nearest the fabric center (QUALE).
        channel_capacity: Channel capacity override; ``None`` uses the
            technology's value (2 for the paper's QSPR, 1 for prior tools).
        trap_candidates: Number of nearest-to-median traps the router tries.
        placer: Placement algorithm — a :class:`PlacerKind` member or the
            registry name of any placer in :data:`repro.pipeline.PLACERS`
            (which is how third-party placers are selected).
        num_seeds: MVFB's number of random seeds ``m``.
        num_placements: Monte-Carlo's number of placement runs ``m'``
            (required when ``placer`` is Monte-Carlo).
        mvfb_patience: Consecutive non-improving runs that stop an MVFB seed.
        mvfb_max_runs_per_seed: Hard cap on placement runs per MVFB seed.
        random_seed: Seed for all randomised placement decisions.
        compiled_routing: Run the router on the compiled routing core (CSR
            Dijkstra kernel plus the epoch-validated route cache).  ``False``
            selects the pre-refactor object-based core; results are
            identical, only speed differs.  Kept selectable for differential
            tests and the performance benchmarks.
        event_core: Run the event-driven simulation core: pop the
            timestamp-ordered event heap, apply the typed event's state
            change, and re-attempt issue only when the event woke a blocked
            instruction (or the run does not track wake sets).  ``False``
            selects the tick-poll loop, which re-attempts every ready
            instruction at every event timestamp.  Results are byte-identical
            either way — only the event-loop and routing counters (and the
            wall clock) differ — so the tick loop is kept selectable for
            differential tests and the event-core benchmarks.
        busy_wake_sets: Park routing-blocked instructions on the precise
            wake-set keys of their failure (blocking-cut channels, occupancy
            traps) and retry them only when one of those keys is woken.
            **Deprecated:** wake sets are now the default path of the event
            core and there is no reason to disable them outside differential
            tests and benchmarks; the flag will eventually be removed
            together with the tick loop.  Results are identical with the
            feature on or off; only futile router calls (and therefore the
            routing-core counters) drop.
        routing_v2: Run the router's v2 fast path — region-scoped
            route-cache invalidation, landmark (ALT) heap-pop pruning,
            warm-started re-computation and batched candidate prefills (see
            :class:`~repro.routing.router.Router`).  Plans and schedules are
            byte-identical either way (held by the differential suites);
            only the routing counters and wall time differ.  Requires
            ``compiled_routing``; kept selectable for differential tests and
            the performance benchmarks.
        shared_route_cache: Consult (and feed) the process-wide route store
            shared across all runs on the same fabric, technology and
            routing policy.  Plans whose region footprint was idle when
            computed are pure functions of geometry there, so sharing them
            is safe; results are identical and only the cache-hit counters
            change.  Off by default to keep default-scenario reports
            byte-stable — service workers, which map many jobs on one
            memoised fabric, turn it on.
    """

    technology: TechnologyParams = PAPER_TECHNOLOGY
    priority_policy: PriorityPolicy | SchedulingPolicy | str = PriorityPolicy.QSPR
    scheduler: SchedulingPolicy | PriorityPolicy | str | None = None
    barrier_scheduling: bool = False
    turn_aware_routing: bool = True
    meeting_point: MeetingPoint = MeetingPoint.MEDIAN
    channel_capacity: int | None = None
    trap_candidates: int = 4
    placer: PlacerKind | str = PlacerKind.MVFB
    num_seeds: int = 25
    num_placements: int | None = None
    mvfb_patience: int = 3
    mvfb_max_runs_per_seed: int = 40
    random_seed: int = 0
    compiled_routing: bool = True
    event_core: bool = True
    busy_wake_sets: bool = True
    routing_v2: bool = True
    shared_route_cache: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.placer, PlacerKind) and (
            not isinstance(self.placer, str) or not self.placer
        ):
            raise MappingError(
                f"placer must be a PlacerKind or a registry name, got {self.placer!r}"
            )
        if self.num_seeds < 1:
            raise MappingError("num_seeds must be at least 1")
        if self.num_placements is not None and self.num_placements < 1:
            raise MappingError("num_placements must be at least 1")
        if self.channel_capacity is not None and self.channel_capacity < 1:
            raise MappingError("channel_capacity must be at least 1")
        if self.trap_candidates < 1:
            raise MappingError("trap_candidates must be at least 1")

    @property
    def placer_name(self) -> str:
        """The placer's registry name (the key into ``repro.pipeline.PLACERS``)."""
        return self.placer.value if isinstance(self.placer, PlacerKind) else self.placer

    @property
    def scheduler_selector(self) -> "SchedulingPolicy | PriorityPolicy | str":
        """The effective scheduler choice (``scheduler`` wins over the alias)."""
        return self.scheduler if self.scheduler is not None else self.priority_policy

    @property
    def scheduler_name(self) -> str:
        """Registry name of the selected scheduling policy.

        This is what reports print and what the scheduler axis of specs and
        sweeps carries; the legacy enum's values equal the registry names, so
        both selector styles label identically.
        """
        selector = self.scheduler_selector
        if isinstance(selector, PriorityPolicy):
            return selector.value
        if isinstance(selector, SchedulingPolicy):
            return selector.name
        return selector

    def scheduling_policy(self) -> SchedulingPolicy:
        """The resolved :class:`SchedulingPolicy` strategy object.

        Raises:
            MappingError: On an unknown scheduler registry name.
        """
        # Imported lazily: repro.pipeline's import chain reaches this module
        # through the built-in mappers, so a module-level import would be
        # circular.
        from repro.pipeline.schedulers import resolve_scheduler

        return resolve_scheduler(self.scheduler_selector, error=MappingError)

    @property
    def effective_channel_capacity(self) -> int:
        """Channel capacity actually used by the router."""
        if self.channel_capacity is not None:
            return self.channel_capacity
        return self.technology.channel_capacity

    def routing_policy(self) -> RoutingPolicy:
        """The :class:`RoutingPolicy` these options describe."""
        return RoutingPolicy(
            turn_aware=self.turn_aware_routing,
            meeting_point=self.meeting_point,
            channel_capacity=self.effective_channel_capacity,
            trap_candidates=self.trap_candidates,
        )

    def with_placer(self, placer: PlacerKind | str, **changes) -> "MapperOptions":
        """A copy of the options with a different placer (and other changes)."""
        return replace(self, placer=placer, **changes)

    def describe(self) -> str:
        """One-line human-readable summary used in logs and reports.

        Identifies a run completely: besides the placer/scheduling/routing
        choices it includes the router's candidate-trap count and — for the
        Monte-Carlo placer — the placement-run budget ``m'``.
        """
        text = (
            f"placer={self.placer_name} priority={self.scheduler_name} "
            f"barriers={self.barrier_scheduling} turn_aware={self.turn_aware_routing} "
            f"meeting={self.meeting_point.value} "
            f"capacity={self.effective_channel_capacity} "
            f"traps={self.trap_candidates} m={self.num_seeds}"
        )
        if self.placer_name == PlacerKind.MONTE_CARLO.value:
            text += f" m'={self.num_placements}"
        if not self.compiled_routing:
            text += " core=legacy"
        if not self.event_core:
            text += " sim=tick"
        if not self.routing_v2:
            text += " routing=v1"
        if not self.busy_wake_sets:
            text += " wake_sets=False"
        if self.shared_route_cache:
            text += " shared_routes=True"
        return text
