"""The QSPR mapper: the paper's scheduling + placement + routing tool.

:class:`QsprMapper` wires the pieces together: it builds the QIDG (and, for
MVFB, the UIDG), constructs forward/backward simulation passes, drives the
selected placer and packages the winning pass into a
:class:`~repro.mapper.result.MappingResult`.

Concrete baseline mappers (:class:`~repro.mapper.quale.QualeMapper`,
:class:`~repro.mapper.qpos.QposMapper`) are thin configuration presets over
the same machinery.
"""

from __future__ import annotations

import time as _time

from repro.circuits.circuit import QuantumCircuit
from repro.errors import MappingError
from repro.fabric.fabric import Fabric
from repro.mapper.options import MapperOptions, PlacerKind
from repro.mapper.result import MappingResult
from repro.placement.base import Placement
from repro.placement.center import CenterPlacer
from repro.placement.monte_carlo import MonteCarloPlacer
from repro.placement.mvfb import MvfbPlacer, MvfbResult
from repro.qidg.analysis import critical_path_latency
from repro.qidg.graph import QIDG, build_qidg
from repro.qidg.uidg import reverse_schedule
from repro.sim.engine import FabricSimulator, SimulationOutcome


class QsprMapper:
    """The paper's mapper (quantum Scheduling, Placement and Routing)."""

    #: Name used in reports and result objects.
    name = "QSPR"

    def __init__(self, options: MapperOptions | None = None) -> None:
        self.options = options if options is not None else MapperOptions()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit, fabric: Fabric) -> MappingResult:
        """Map ``circuit`` onto ``fabric`` and return the best realisation.

        Raises:
            MappingError: If the circuit cannot be mapped with the selected
                options (e.g. MVFB placement of a circuit with measurements,
                which cannot be uncomputed).
        """
        if circuit.num_instructions == 0:
            raise MappingError("cannot map an empty circuit")
        options = self.options
        started = _time.perf_counter()
        qidg = build_qidg(circuit)
        ideal = critical_path_latency(qidg, options.technology)

        forward_sim = self._make_simulator(circuit, fabric, qidg)

        if options.placer is PlacerKind.CENTER:
            result = self._map_with_center(circuit, fabric, forward_sim, ideal)
        elif options.placer is PlacerKind.MONTE_CARLO:
            result = self._map_with_monte_carlo(circuit, fabric, forward_sim, ideal)
        elif options.placer is PlacerKind.MVFB:
            result = self._map_with_mvfb(circuit, fabric, forward_sim, qidg, ideal)
        else:  # pragma: no cover - exhaustive over the enum
            raise MappingError(f"unknown placer {options.placer!r}")

        result.cpu_seconds = _time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Pass construction
    # ------------------------------------------------------------------
    def _make_simulator(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        qidg: QIDG,
        forced_order: list[int] | None = None,
    ) -> FabricSimulator:
        options = self.options
        return FabricSimulator(
            circuit,
            fabric,
            options.technology,
            routing_policy=options.routing_policy(),
            priority_policy=options.priority_policy,
            forced_order=forced_order,
            qidg=qidg,
            barrier_scheduling=options.barrier_scheduling and forced_order is None,
        )

    # ------------------------------------------------------------------
    # Placer-specific flows
    # ------------------------------------------------------------------
    def _map_with_center(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        forward_sim: FabricSimulator,
        ideal: float,
    ) -> MappingResult:
        placement = CenterPlacer(fabric).place(circuit)
        outcome = forward_sim.run(placement)
        return self._result_from_outcome(
            circuit, fabric, outcome, ideal, direction="forward", placement_runs=1
        )

    def _map_with_monte_carlo(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        forward_sim: FabricSimulator,
        ideal: float,
    ) -> MappingResult:
        options = self.options
        if options.num_placements is None:
            raise MappingError(
                "the Monte-Carlo placer requires MapperOptions.num_placements (the paper's m')"
            )
        placer = MonteCarloPlacer(fabric, forward_sim.run)
        mc = placer.run(circuit, options.num_placements, seed=options.random_seed)
        return self._result_from_outcome(
            circuit,
            fabric,
            mc.best_outcome,
            ideal,
            direction="forward",
            placement_runs=mc.num_runs,
        )

    def _map_with_mvfb(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        forward_sim: FabricSimulator,
        qidg: QIDG,
        ideal: float,
    ) -> MappingResult:
        options = self.options
        if any(instruction.is_measurement for instruction in circuit.instructions):
            raise MappingError(
                "MVFB placement requires a reversible circuit; remove measurements or "
                "use the Monte-Carlo/center placer"
            )
        inverse_circuit = circuit.inverse()
        uidg = build_qidg(inverse_circuit)

        def backward(placement: Placement, forward_schedule: list[int]) -> SimulationOutcome:
            order = reverse_schedule(forward_schedule, circuit.num_instructions)
            simulator = self._make_simulator(inverse_circuit, fabric, uidg, forced_order=order)
            return simulator.run(placement)

        placer = MvfbPlacer(
            fabric,
            forward_sim.run,
            backward,
            patience=options.mvfb_patience,
            max_runs_per_seed=options.mvfb_max_runs_per_seed,
        )
        mvfb = placer.run(circuit, options.num_seeds, seed=options.random_seed)
        return self._result_from_mvfb(circuit, fabric, mvfb, ideal)

    # ------------------------------------------------------------------
    # Result packaging
    # ------------------------------------------------------------------
    def _result_from_outcome(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        outcome: SimulationOutcome,
        ideal: float,
        *,
        direction: str,
        placement_runs: int,
    ) -> MappingResult:
        return MappingResult(
            circuit_name=circuit.name,
            fabric_name=fabric.name,
            mapper_name=self.name,
            latency=outcome.latency,
            ideal_latency=ideal,
            schedule=list(outcome.schedule),
            initial_placement=outcome.initial_placement,
            final_placement=outcome.final_placement,
            trace=outcome.trace,
            records=outcome.records,
            direction=direction,
            placement_runs=placement_runs,
            total_moves=outcome.total_moves,
            total_turns=outcome.total_turns,
            total_congestion_delay=outcome.total_congestion_delay,
            cpu_seconds=outcome.cpu_seconds,
            options=self.options,
        )

    def _result_from_mvfb(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        mvfb: MvfbResult,
        ideal: float,
    ) -> MappingResult:
        outcome = mvfb.best_outcome
        if mvfb.best_direction == "forward":
            schedule = list(outcome.schedule)
            initial = outcome.initial_placement
            final = outcome.final_placement
            trace = outcome.trace
        else:
            # A backward (uncompute) pass won: the reported solution executes
            # the forward circuit from the backward pass's final placement and
            # replays the reverse of the backward control trace.
            num_instructions = circuit.num_instructions
            schedule = [num_instructions - 1 - index for index in reversed(outcome.schedule)]
            initial = outcome.final_placement
            final = outcome.initial_placement
            trace = outcome.trace.reversed_trace()
        result = MappingResult(
            circuit_name=circuit.name,
            fabric_name=fabric.name,
            mapper_name=self.name,
            latency=mvfb.best_latency,
            ideal_latency=ideal,
            schedule=schedule,
            initial_placement=initial,
            final_placement=final,
            trace=trace,
            records=outcome.records,
            direction=mvfb.best_direction,
            placement_runs=mvfb.total_runs,
            total_moves=outcome.total_moves,
            total_turns=outcome.total_turns,
            total_congestion_delay=outcome.total_congestion_delay,
            cpu_seconds=mvfb.cpu_seconds,
            options=self.options,
        )
        return result
