"""The QSPR mapper: the paper's scheduling + placement + routing tool.

:class:`QsprMapper` is a thin configuration shim over the staged
:class:`~repro.pipeline.stages.MappingPipeline`
(build-QIDG → place → simulate → package-result).  The placer is resolved by
name through the :data:`repro.pipeline.PLACERS` registry, so any
decorator-registered strategy — not just the paper's MVFB/Monte-Carlo/center
trio — plugs in via ``MapperOptions(placer="<name>")`` without modifying this
class.

Concrete baseline mappers (:class:`~repro.mapper.quale.QualeMapper`,
:class:`~repro.mapper.qpos.QposMapper`) are option presets over the same
pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuits.circuit import QuantumCircuit
from repro.fabric.fabric import Fabric
from repro.mapper.options import MapperOptions
from repro.mapper.result import MappingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.context import PipelineObserver
    from repro.pipeline.stages import MappingPipeline


class QsprMapper:
    """The paper's mapper (quantum Scheduling, Placement and Routing)."""

    #: Name used in reports and result objects.
    name = "QSPR"

    def __init__(self, options: MapperOptions | None = None) -> None:
        self.options = options if options is not None else MapperOptions()

    def pipeline(self) -> "MappingPipeline":
        """The staged pipeline this mapper runs (override to customise)."""
        # Imported lazily: repro.pipeline registers this class's factory, so
        # a module-level import would be circular.
        from repro.pipeline.stages import MappingPipeline

        return MappingPipeline.standard()

    def map(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        *,
        observer: "PipelineObserver | None" = None,
    ) -> MappingResult:
        """Map ``circuit`` onto ``fabric`` and return the best realisation.

        Args:
            circuit: The circuit to map (must contain instructions).
            fabric: The target fabric.
            observer: Optional per-stage hooks (see
                :class:`~repro.pipeline.context.PipelineObserver`).

        Raises:
            MappingError: If the circuit cannot be mapped with the selected
                options (e.g. MVFB placement of a circuit with measurements,
                which cannot be uncomputed) or the placer name is unknown.
        """
        pipeline = self.pipeline()
        if observer is not None:
            pipeline = pipeline.with_observer(observer)
        return pipeline.run(
            circuit, fabric, options=self.options, mapper_name=self.name
        )
