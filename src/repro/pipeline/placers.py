"""The placer registry and the built-in placement strategies.

A *placer strategy* is a callable invoked by the pipeline's place stage as
``strategy(ctx)`` with the live :class:`~repro.pipeline.context.PipelineContext`.
It returns either

* a :class:`~repro.placement.base.Placement` — an initial placement the
  pipeline's simulate stage will evaluate (the simple case; see
  :func:`center_strategy`), or
* a :class:`~repro.pipeline.context.PlacementOutcome` — a fully evaluated
  winning pass, for search placers that already ran simulations themselves
  (:func:`monte_carlo_strategy`, :func:`mvfb_strategy`).

Third-party placers register through the decorator::

    from repro.pipeline import PLACERS

    @PLACERS.register("corner")
    def corner_strategy(ctx):
        return Placement({q.name: trap_id for q, trap_id in ...})

and are immediately usable by name everywhere a placer is named: in
``MapperOptions(placer="corner")``, ``repro.map_circuit(..., placer="corner")``,
``ExperimentSpec(placer="corner")`` and the ``qspr-map`` CLI.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.pipeline.context import PipelineContext, PlacementOutcome
from repro.pipeline.registry import Registry
from repro.placement.base import Placement
from repro.placement.center import CenterPlacer
from repro.placement.monte_carlo import MonteCarloPlacer
from repro.placement.mvfb import MvfbPlacer
from repro.qidg.graph import build_qidg
from repro.qidg.uidg import reverse_schedule
from repro.sim.engine import SimulationOutcome

#: The placer registry.  Built-ins: ``mvfb``, ``monte-carlo``, ``center``.
PLACERS = Registry("placer")


@PLACERS.register("center")
def center_strategy(ctx: PipelineContext) -> Placement:
    """Deterministic densest-around-the-center placement (QUALE's strategy).

    Returns the bare placement; the pipeline's simulate stage evaluates it
    with one forward pass.
    """
    return CenterPlacer(ctx.fabric).place(ctx.circuit)


@PLACERS.register("monte-carlo")
def monte_carlo_strategy(ctx: PipelineContext) -> PlacementOutcome:
    """Best of ``m'`` random center placements (the paper's MC baseline)."""
    options = ctx.options
    if options.num_placements is None:
        raise MappingError(
            "the Monte-Carlo placer requires MapperOptions.num_placements (the paper's m')"
        )
    placer = MonteCarloPlacer(ctx.fabric, ctx.simulate)
    mc = placer.run(ctx.circuit, options.num_placements, seed=options.random_seed)
    return PlacementOutcome.from_simulation(
        mc.best_outcome, direction="forward", placement_runs=mc.num_runs
    )


@PLACERS.register("mvfb")
def mvfb_strategy(ctx: PipelineContext) -> PlacementOutcome:
    """The paper's Multi-start Variable-length Forward/Backward search.

    Runs alternating forward (QIDG) and backward (UIDG, reversed schedule)
    passes for ``m`` random seeds and keeps the best pass in either
    direction.  A backward winner is normalised here into its equivalent
    forward execution: the forward circuit starts from the backward pass's
    final placement and replays the reverse of the backward control trace.

    Raises:
        MappingError: If the circuit contains measurements (an uncompute
            pass requires reversibility).
    """
    options = ctx.options
    circuit = ctx.circuit
    if any(instruction.is_measurement for instruction in circuit.instructions):
        raise MappingError(
            "MVFB placement requires a reversible circuit; remove measurements or "
            "use the Monte-Carlo/center placer"
        )
    inverse_circuit = circuit.inverse()
    uidg = build_qidg(inverse_circuit)

    def backward(placement: Placement, forward_schedule: list[int]) -> SimulationOutcome:
        order = reverse_schedule(forward_schedule, circuit.num_instructions)
        simulator = ctx.make_simulator(inverse_circuit, uidg, forced_order=order)
        return simulator.run(placement)

    placer = MvfbPlacer(
        ctx.fabric,
        ctx.simulate,
        backward,
        patience=options.mvfb_patience,
        max_runs_per_seed=options.mvfb_max_runs_per_seed,
    )
    mvfb = placer.run(circuit, options.num_seeds, seed=options.random_seed)

    outcome = mvfb.best_outcome
    if mvfb.best_direction == "forward":
        schedule = list(outcome.schedule)
        initial = outcome.initial_placement
        final = outcome.final_placement
        trace = outcome.trace
    else:
        num_instructions = circuit.num_instructions
        schedule = [num_instructions - 1 - index for index in reversed(outcome.schedule)]
        initial = outcome.final_placement
        final = outcome.initial_placement
        trace = outcome.trace.reversed_trace()
    return PlacementOutcome(
        latency=mvfb.best_latency,
        schedule=schedule,
        initial_placement=initial,
        final_placement=final,
        trace=trace,
        records=outcome.records,
        direction=mvfb.best_direction,
        placement_runs=mvfb.total_runs,
        total_moves=outcome.total_moves,
        total_turns=outcome.total_turns,
        total_congestion_delay=outcome.total_congestion_delay,
        cpu_seconds=mvfb.cpu_seconds,
        routing_seconds=outcome.routing_seconds,
        routing_stats=outcome.routing_stats,
        event_stats=outcome.event_stats,
    )
