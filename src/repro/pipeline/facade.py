"""The one-call facade: :func:`map_circuit`.

``repro.map_circuit`` is the canonical public entry point of the package:
every argument can be a name resolved through the plugin registries, so the
whole system — including third-party mappers, placers, fabrics and circuits
registered via decorators — is reachable from one line::

    import repro

    result = repro.map_circuit("[[5,1,3]]", "quale", mapper="qspr", placer="center")
    result = repro.map_circuit("ghz", "4x4c3", placer="monte-carlo",
                               num_placements=4)
"""

from __future__ import annotations

import inspect

from repro.circuits.circuit import QuantumCircuit
from repro.errors import MappingError
from repro.fabric.fabric import Fabric
from repro.mapper.options import MapperOptions
from repro.mapper.result import MappingResult
from repro.pipeline.circuits import resolve_circuit
from repro.pipeline.context import PipelineObserver
from repro.pipeline.fabrics import resolve_fabric
from repro.pipeline.mappers import resolve_mapper
from repro.pipeline.technologies import resolve_technology


def map_circuit(
    circuit: "QuantumCircuit | str",
    fabric: "Fabric | str" = "quale",
    mapper: str = "qspr",
    placer: str = "mvfb",
    *,
    observer: PipelineObserver | None = None,
    **options,
) -> MappingResult:
    """Map a circuit onto a fabric, resolving every name through the registries.

    Args:
        circuit: A live :class:`~repro.circuits.circuit.QuantumCircuit`, a
            circuit-registry name (``"[[5,1,3]]"``, ``"ghz"``, …) or the path
            of a QASM file.
        fabric: A live :class:`~repro.fabric.fabric.Fabric`, a fabric-registry
            name (``"quale"``, ``"small"``, …) or a geometry label such as
            ``"4x4c3"``.
        mapper: Mapper-registry name (``"qspr"``, ``"quale"``, ``"qpos"``,
            ``"ideal"`` or a plugin).
        placer: Placer-registry name used by placer-driven mappers
            (``"mvfb"``, ``"monte-carlo"``, ``"center"`` or a plugin).
        observer: Optional :class:`~repro.pipeline.context.PipelineObserver`
            receiving per-stage callbacks (passed through to mappers whose
            ``map`` accepts one, i.e. the pipeline-backed mappers).
        options: Extra :class:`~repro.mapper.options.MapperOptions` fields,
            e.g. ``num_seeds=5``, ``num_placements=10``, ``random_seed=7``,
            ``scheduler="quale-alap"``.  ``technology`` accepts a
            :class:`~repro.technology.TechnologyParams`, a technology-registry
            name (``"fast-turn"``) or a custom-PMD parameter dict.

    Returns:
        The :class:`~repro.mapper.result.MappingResult` of the run.

    Raises:
        MappingError: On unknown names (with did-you-mean suggestions) or
            unknown option fields.

    Example::

        >>> import repro
        >>> result = repro.map_circuit("ghz", "small", placer="center")
        >>> result.latency >= result.ideal_latency > 0
        True
    """
    live_circuit = resolve_circuit(circuit)
    live_fabric = resolve_fabric(fabric)
    if "technology" in options:
        options["technology"] = resolve_technology(options["technology"])
    try:
        # An explicit placer inside **options (e.g. an ablation override
        # dict) wins over the positional default.
        mapper_options = MapperOptions(**{"placer": placer, **options})
    except TypeError as exc:
        known = ", ".join(
            name for name in MapperOptions.__dataclass_fields__ if name != "placer"
        )
        raise MappingError(f"invalid mapper option: {exc} (known options: {known})") from exc
    mapper_object = resolve_mapper(mapper, mapper_options)
    if observer is not None and _accepts_observer(mapper_object.map):
        return mapper_object.map(live_circuit, live_fabric, observer=observer)
    return mapper_object.map(live_circuit, live_fabric)


def _accepts_observer(map_method) -> bool:
    """Whether a mapper's ``map`` accepts an ``observer`` keyword."""
    try:
        signature = inspect.signature(map_method)
    except (TypeError, ValueError):  # pragma: no cover - builtins/extensions
        return False
    if "observer" in signature.parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    )
