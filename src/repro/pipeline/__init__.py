"""Composable mapping pipeline and plugin registries.

This subpackage is the canonical public API of the reproduction.  It exposes

* :class:`Registry` (:mod:`repro.pipeline.registry`) — the generic
  string-keyed plugin table with decorator registration and did-you-mean
  lookup errors;
* six populated registries — :data:`MAPPERS`, :data:`PLACERS`,
  :data:`FABRICS`, :data:`CIRCUITS`, :data:`SCHEDULERS` and
  :data:`TECHNOLOGIES` — through which every name in the system (CLI flags,
  :class:`~repro.runner.spec.ExperimentSpec` axes, facade arguments) is
  resolved;
* :class:`MappingPipeline` (:mod:`repro.pipeline.stages`) — the staged
  build-QIDG → place → simulate → package-result engine behind every mapper,
  with per-stage timings and :class:`PipelineObserver` hooks;
* :func:`map_circuit` (:mod:`repro.pipeline.facade`) — the one-call facade.

Registering a plugin makes it available *everywhere* without touching any
core module::

    from repro.pipeline import PLACERS

    @PLACERS.register("corner")
    def corner_strategy(ctx):
        ...

    repro.map_circuit("[[5,1,3]]", "small", placer="corner")

See ``docs/PIPELINE.md`` for the architecture and a complete custom-placer
walkthrough.
"""

from __future__ import annotations

from repro.pipeline.registry import Registry, RegistryError
from repro.pipeline.context import PipelineContext, PipelineObserver, PlacementOutcome
from repro.pipeline.placers import PLACERS
from repro.pipeline.stages import STANDARD_STAGES, MappingPipeline, Stage
from repro.pipeline.fabrics import FABRICS, resolve_fabric
from repro.pipeline.circuits import CIRCUITS, resolve_circuit
from repro.pipeline.mappers import IdealMapper, MAPPERS, resolve_mapper
from repro.pipeline.schedulers import SCHEDULERS, resolve_scheduler
from repro.pipeline.technologies import TECHNOLOGIES, resolve_technology
from repro.pipeline.facade import map_circuit

#: The six plugin registries, keyed by their CLI listing name.
REGISTRIES: dict[str, Registry] = {
    "mappers": MAPPERS,
    "placers": PLACERS,
    "fabrics": FABRICS,
    "circuits": CIRCUITS,
    "schedulers": SCHEDULERS,
    "technologies": TECHNOLOGIES,
}

__all__ = [
    "CIRCUITS",
    "FABRICS",
    "IdealMapper",
    "MAPPERS",
    "MappingPipeline",
    "PLACERS",
    "PipelineContext",
    "PipelineObserver",
    "PlacementOutcome",
    "REGISTRIES",
    "Registry",
    "RegistryError",
    "SCHEDULERS",
    "STANDARD_STAGES",
    "Stage",
    "TECHNOLOGIES",
    "map_circuit",
    "resolve_circuit",
    "resolve_fabric",
    "resolve_mapper",
    "resolve_scheduler",
    "resolve_technology",
]
