"""The mapper registry: named factories for end-to-end mappers.

Entries are factories ``(options: MapperOptions | None) -> mapper`` where the
returned object exposes ``map(circuit, fabric) -> MappingResult``.  Built-ins:

* ``qspr`` — the paper's mapper; honours every ``MapperOptions`` knob.
* ``quale`` / ``qpos`` — the prior-art presets (fixed options; the
  ``options`` argument only contributes its technology parameters).
* ``ideal`` — the zero-routing / zero-congestion lower bound, adapted to the
  common ``map`` interface (empty placement and trace, latency equal to the
  QIDG critical path).

A third-party mapper registers the same way as any plugin::

    from repro.pipeline import MAPPERS

    @MAPPERS.register("my-mapper")
    def build_my_mapper(options=None):
        return MyMapper(options)
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.mapper.options import MapperOptions
from repro.mapper.qpos import QposMapper
from repro.mapper.qspr import QsprMapper
from repro.mapper.quale import QualeMapper
from repro.mapper.result import MappingResult
from repro.pipeline.registry import Registry

#: The mapper registry.  Built-ins: ``qspr``, ``quale``, ``qpos``, ``ideal``.
MAPPERS = Registry("mapper")


class IdealMapper:
    """The ideal baseline behind the common ``map(circuit, fabric)`` surface.

    Wraps :class:`~repro.mapper.ideal.IdealBaseline` so the zero-routing /
    zero-congestion bound participates in sweeps, the facade and the CLI
    like any other mapper.  The result carries an empty placement and trace
    (nothing moves on an ideal fabric) and ``latency == ideal_latency``.
    """

    name = "Ideal"

    def __init__(self, options: MapperOptions | None = None) -> None:
        self.options = options if options is not None else MapperOptions()

    def map(self, circuit, fabric) -> MappingResult:
        """Latency lower bound of ``circuit``, packaged as a mapping result."""
        import time as _time

        from repro.mapper.ideal import IdealBaseline
        from repro.placement.base import Placement
        from repro.sim.trace import ControlTrace

        if circuit.num_instructions == 0:
            raise MappingError("cannot map an empty circuit")
        started = _time.perf_counter()
        latency = IdealBaseline(self.options.technology).latency(circuit)
        return MappingResult(
            circuit_name=circuit.name,
            fabric_name=fabric.name,
            mapper_name=self.name,
            latency=latency,
            ideal_latency=latency,
            schedule=[],
            initial_placement=Placement({}),
            final_placement=Placement({}),
            trace=ControlTrace(),
            records={},
            direction="-",
            placement_runs=0,
            cpu_seconds=_time.perf_counter() - started,
            options=self.options,
        )


@MAPPERS.register("qspr")
def build_qspr(options: MapperOptions | None = None) -> QsprMapper:
    """The paper's mapper, configured by ``options``."""
    return QsprMapper(options)


@MAPPERS.register("quale")
def build_quale(options: MapperOptions | None = None) -> QualeMapper:
    """The QUALE preset (fixed placer/scheduling/routing choices)."""
    if options is not None:
        return QualeMapper(options.technology)
    return QualeMapper()


@MAPPERS.register("qpos")
def build_qpos(options: MapperOptions | None = None) -> QposMapper:
    """The QPOS preset (fixed placer/scheduling/routing choices)."""
    if options is not None:
        return QposMapper(options.technology)
    return QposMapper()


@MAPPERS.register("ideal")
def build_ideal(options: MapperOptions | None = None) -> IdealMapper:
    """The zero-routing / zero-congestion baseline."""
    return IdealMapper(options)


def resolve_mapper(name: str, options: MapperOptions | None = None):
    """Instantiate the mapper registered under ``name``.

    Raises:
        MappingError: On an unknown name (with a did-you-mean suggestion).
    """
    return MAPPERS.resolve(name, error=MappingError)(options)
