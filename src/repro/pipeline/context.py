"""Shared state of one pipeline run: context, observers and stage output.

A :class:`PipelineContext` is created by
:meth:`~repro.pipeline.stages.MappingPipeline.run` and threaded through every
stage.  Stages read the inputs (circuit, fabric, options) and fill in the
intermediate products (QIDG, simulator, placement, outcome) until the final
stage packages a :class:`~repro.mapper.result.MappingResult`.

Placer strategies communicate with the pipeline through
:class:`PlacementOutcome`: search placers (MVFB, Monte-Carlo) return a full
outcome because the search itself evaluates simulations, while simple placers
return a bare :class:`~repro.placement.base.Placement` and let the pipeline's
simulate stage evaluate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.circuits.circuit import QuantumCircuit
from repro.fabric.fabric import Fabric
from repro.mapper.options import MapperOptions
from repro.placement.base import Placement
from repro.qidg.graph import QIDG
from repro.routing.compiled import RoutingCoreStats
from repro.sim.engine import FabricSimulator, InstructionRecord, SimulationOutcome
from repro.sim.events import EventLoopStats
from repro.sim.trace import ControlTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapper.result import MappingResult


@dataclass
class PlacementOutcome:
    """The fully evaluated product of the place/simulate stages.

    Mirrors the fields :class:`~repro.mapper.result.MappingResult` needs,
    normalised to the *forward* execution (an MVFB backward winner is already
    converted by the MVFB strategy).

    Attributes:
        latency: Execution latency of the winning pass (µs).
        schedule: Instruction indices in issue order over the forward circuit.
        initial_placement: Placement the execution starts from.
        final_placement: Placement after the last instruction.
        trace: Micro-command control trace of the winning pass.
        records: Per-instruction timing records.
        direction: ``"forward"`` or ``"backward"`` (which MVFB pass won).
        placement_runs: Number of placement runs the placer performed.
        total_moves: Total qubit moves of the winning pass.
        total_turns: Total qubit turns of the winning pass.
        total_congestion_delay: Summed busy-queue waiting time.
        cpu_seconds: Simulation time spent producing this outcome.
        routing_seconds: Wall-clock time the winning pass spent inside the
            router (a subset of its simulation time).
        routing_stats: Routing-core counters of the winning pass.
        event_stats: Event-loop counters of the winning pass (events
            processed, peak heap size, wake hits, skipped/executed polls).
    """

    latency: float
    schedule: list[int]
    initial_placement: Placement
    final_placement: Placement
    trace: ControlTrace
    records: dict[int, InstructionRecord]
    direction: str = "forward"
    placement_runs: int = 1
    total_moves: int = 0
    total_turns: int = 0
    total_congestion_delay: float = 0.0
    cpu_seconds: float = 0.0
    routing_seconds: float = 0.0
    routing_stats: RoutingCoreStats = field(default_factory=RoutingCoreStats)
    event_stats: EventLoopStats = field(default_factory=EventLoopStats)

    @classmethod
    def from_simulation(
        cls,
        outcome: SimulationOutcome,
        *,
        direction: str = "forward",
        placement_runs: int = 1,
        cpu_seconds: float | None = None,
    ) -> "PlacementOutcome":
        """Wrap one :class:`~repro.sim.engine.SimulationOutcome`."""
        return cls(
            latency=outcome.latency,
            schedule=list(outcome.schedule),
            initial_placement=outcome.initial_placement,
            final_placement=outcome.final_placement,
            trace=outcome.trace,
            records=outcome.records,
            direction=direction,
            placement_runs=placement_runs,
            total_moves=outcome.total_moves,
            total_turns=outcome.total_turns,
            total_congestion_delay=outcome.total_congestion_delay,
            cpu_seconds=outcome.cpu_seconds if cpu_seconds is None else cpu_seconds,
            routing_seconds=outcome.routing_seconds,
            routing_stats=outcome.routing_stats,
            event_stats=outcome.event_stats,
        )


class PipelineObserver:
    """Per-stage hooks of a pipeline run.

    Subclass and override any subset of the methods; the defaults do
    nothing.  Observers see the live context, so they can inspect (but should
    not replace) the intermediate products.

    Example::

        class StageLogger(PipelineObserver):
            def stage_finished(self, stage, ctx, seconds):
                print(f"{stage}: {seconds * 1000:.1f} ms")
    """

    def stage_started(self, stage: str, ctx: "PipelineContext") -> None:
        """Called immediately before ``stage`` runs."""

    def stage_finished(self, stage: str, ctx: "PipelineContext", seconds: float) -> None:
        """Called after ``stage`` completed, with its wall-clock duration."""


@dataclass
class PipelineContext:
    """Everything a pipeline run reads and produces.

    The immutable inputs (``circuit``, ``fabric``, ``options``,
    ``mapper_name``) are set by :meth:`MappingPipeline.run
    <repro.pipeline.stages.MappingPipeline.run>`; the remaining slots are
    filled by the stages as the run progresses.

    Attributes:
        circuit: The circuit being mapped.
        fabric: The target fabric.
        options: The mapping options (placer name, seeds, routing policy, …).
        mapper_name: Name stamped on the result (``"QSPR"`` by default).
        qidg: Dependency graph of ``circuit`` (build-qidg stage).
        ideal_latency: Critical-path lower bound (build-qidg stage).
        forward_sim: Forward simulator over ``circuit`` (build-qidg stage).
        placement: Initial placement chosen by a simple placer strategy;
            evaluated by the simulate stage.
        outcome: The evaluated winning pass (place or simulate stage).
        result: The packaged result (package-result stage).
        stage_seconds: Wall-clock duration of each completed stage, keyed by
            stage name, in execution order.
        extras: Free-form scratch space for custom stages and strategies.
    """

    circuit: QuantumCircuit
    fabric: Fabric
    options: MapperOptions
    mapper_name: str = "QSPR"
    qidg: QIDG | None = None
    ideal_latency: float | None = None
    forward_sim: FabricSimulator | None = None
    placement: Placement | None = None
    outcome: PlacementOutcome | None = None
    result: "MappingResult | None" = None
    stage_seconds: dict[str, float] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)

    def make_simulator(
        self,
        circuit: QuantumCircuit | None = None,
        qidg: QIDG | None = None,
        forced_order: list[int] | None = None,
    ) -> FabricSimulator:
        """Construct a simulator configured by this context's options.

        Defaults to the forward circuit and its QIDG; MVFB's backward passes
        pass the uncompute circuit, its UIDG and the reversed forced order.
        """
        options = self.options
        return FabricSimulator(
            circuit if circuit is not None else self.circuit,
            self.fabric,
            options.technology,
            routing_policy=options.routing_policy(),
            scheduler=options.scheduling_policy(),
            forced_order=forced_order,
            qidg=qidg if qidg is not None else self.qidg,
            barrier_scheduling=options.barrier_scheduling and forced_order is None,
            compiled_routing=options.compiled_routing,
            event_core=options.event_core,
            busy_wake_sets=options.busy_wake_sets,
            routing_v2=options.routing_v2,
            shared_route_cache=options.shared_route_cache,
        )

    def simulate(self, placement: Placement) -> SimulationOutcome:
        """Run the forward simulator from ``placement`` (placer helper)."""
        if self.forward_sim is None:
            raise RuntimeError("the build-qidg stage has not run yet")
        return self.forward_sim.run(placement)
