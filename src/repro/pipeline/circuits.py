"""The benchmark-circuit registry: named factories for workload circuits.

Entries are factories ``(**params) -> QuantumCircuit``.  Built-ins:

* the paper's six QECC encoder benchmarks, under their code names
  (``"[[5,1,3]]"`` … ``"[[23,1,7]]"``), in the paper's table order;
* ``ghz`` — GHZ chains (fully sequential two-qubit gates);
* ``ripple`` — ripple dependency chains with repeatable rounds;
* ``qft-like`` — the all-to-all interaction pattern of a QFT;
* ``random`` — seeded random circuits with a controlled two-qubit fraction.

:func:`resolve_circuit` also accepts a live circuit (returned unchanged) or
the path of a QASM file, which keeps the CLI and
:class:`~repro.runner.spec.ExperimentSpec` semantics: any string that is not
a registered name is treated as a file path.

Besides plain registry names, *parameterised* names select a factory **and**
its parameters in one string: ``"random-layered:q=8:d=12:seed=3"`` is the
``random-layered`` factory called with ``num_qubits=8, depth=12, seed=3``.
The segments are colon-separated ``key=value`` pairs (comma-free on purpose,
so parameterised names survive the CLI's comma-separated sweep axes and
:func:`~repro.runner.spec.parse_axis`).  Values parse as int, then float,
then bool, then plain string; short aliases (``q``/``w`` → ``num_qubits``,
``d`` → ``depth``, ``g`` → ``num_gates``, ``l`` → ``locality``, ``s`` →
``seed``, ``f`` → ``fill``, ``r`` → ``rounds``) keep trace files and command
lines compact.  Because the whole configuration lives in the *name*, a
parameterised circuit is picklable across worker processes and hashes into
result-cache keys like any registered name.
"""

from __future__ import annotations

import inspect
from pathlib import Path

from repro.circuits.builders import ghz_circuit, qft_like_circuit, ripple_chain_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qecc import BENCHMARK_NAMES, qecc_encoder, scaled_encoder
from repro.circuits.random_circuits import random_circuit
from repro.errors import CircuitError
from repro.pipeline.registry import Registry

#: The circuit registry: QECC suite + generators.
CIRCUITS = Registry("circuit")


def _qecc_factory(name: str):
    def build(**params) -> QuantumCircuit:
        if params:
            raise CircuitError(f"QECC benchmark {name!r} takes no parameters")
        return qecc_encoder(name)

    build.__name__ = f"qecc_{name}"
    build.__doc__ = f"The paper's {name} QECC encoder benchmark."
    return build


for _name in BENCHMARK_NAMES:
    CIRCUITS.register(_name, _qecc_factory(_name))

@CIRCUITS.register("qecc-scaled")
def qecc_scaled(distance: int = 9) -> QuantumCircuit:
    """A QECC-encoder benchmark extrapolated to code distance ``distance``.

    ``qecc-scaled:distance=9`` (or ``qecc-scaled:dist=9``) builds the
    ``[[41,1,9]]`` member of the scaled family; see
    :func:`repro.circuits.qecc.scaled_encoder`.
    """
    return scaled_encoder(distance)


@CIRCUITS.register("ghz")
def ghz(num_qubits: int = 5) -> QuantumCircuit:
    """A GHZ chain: ``num_qubits`` fully sequential two-qubit gates."""
    return ghz_circuit(num_qubits)


@CIRCUITS.register("ripple")
def ripple(num_qubits: int = 5, *, rounds: int = 1) -> QuantumCircuit:
    """A ripple dependency chain repeated for ``rounds`` rounds."""
    return ripple_chain_circuit(num_qubits, rounds=rounds)


@CIRCUITS.register("qft-like")
def qft_like(num_qubits: int = 5) -> QuantumCircuit:
    """The all-to-all controlled-interaction pattern of a QFT."""
    return qft_like_circuit(num_qubits)


@CIRCUITS.register("random")
def random(
    num_qubits: int = 6,
    num_gates: int = 24,
    *,
    two_qubit_fraction: float = 0.6,
    seed: int = 0,
) -> QuantumCircuit:
    """A seeded random circuit with a controlled two-qubit gate fraction."""
    return random_circuit(
        num_qubits, num_gates, two_qubit_fraction=two_qubit_fraction, seed=seed
    )


#: Short spellings accepted in parameterised circuit names, expanded to the
#: canonical factory keyword before the factory is called.
PARAM_ALIASES: dict[str, str] = {
    "q": "num_qubits",
    "w": "num_qubits",
    "qubits": "num_qubits",
    "width": "num_qubits",
    "d": "depth",
    "g": "num_gates",
    "gates": "num_gates",
    "l": "locality",
    "loc": "locality",
    "dist": "distance",
    "s": "seed",
    "f": "fill",
    "r": "rounds",
    "frac": "two_qubit_fraction",
}


def _coerce(value: str):
    """Parse a parameter value: int, then float, then bool, then string."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            pass
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return value


def parse_circuit_name(name: str) -> "tuple[str, dict]":
    """Split a circuit name into ``(base, params)``.

    Plain registry names come back with empty params; a parameterised name
    is only recognised when its base is a registered factory, so QASM paths
    containing colons are never mis-parsed.

    Example::

        >>> parse_circuit_name("random:q=4:seed=7")
        ('random', {'num_qubits': 4, 'seed': 7})
        >>> parse_circuit_name("[[5,1,3]]")
        ('[[5,1,3]]', {})
    """
    if name in CIRCUITS or ":" not in name:
        return name, {}
    base, *segments = name.split(":")
    if base not in CIRCUITS:
        return name, {}
    params: dict = {}
    for segment in segments:
        key, equals, value = segment.partition("=")
        key = key.strip()
        if not equals or not key:
            raise CircuitError(
                f"bad parameter segment {segment!r} in circuit name {name!r}; "
                "expected key=value"
            )
        params[PARAM_ALIASES.get(key, key)] = _coerce(value.strip())
    return base, params


def is_circuit_name(name: str) -> bool:
    """Whether ``name`` resolves through the registry (plain or parameterised)."""
    base, _ = parse_circuit_name(name)
    return base in CIRCUITS


def circuit_accepts_param(name: str, param: str) -> bool:
    """Whether the factory behind ``name`` takes a keyword named ``param``.

    False for unregistered names, for factories whose signature cannot be
    inspected, and for QASM paths — callers use this to decide whether e.g.
    a ``--seed`` flag can be threaded into the circuit itself.
    """
    base, _ = parse_circuit_name(name)
    if base not in CIRCUITS:
        return False
    try:
        signature = inspect.signature(CIRCUITS.get(base))
    except (TypeError, ValueError):  # builtins, C callables
        return False
    return param in signature.parameters


def seeded_circuit_name(name: str, seed: int) -> str:
    """Thread ``seed`` into a registered circuit name, if the factory takes one.

    A seed already embedded in the name wins; names whose factory has no
    ``seed`` parameter (the QECC suite, QASM ingests, …) come back unchanged.

    Example::

        >>> seeded_circuit_name("random:q=4", 7)
        'random:q=4:seed=7'
        >>> seeded_circuit_name("[[5,1,3]]", 7)
        '[[5,1,3]]'
    """
    base, params = parse_circuit_name(name)
    if "seed" in params or not circuit_accepts_param(name, "seed"):
        return name
    return f"{name}:seed={seed}"


def resolve_circuit(circuit: "QuantumCircuit | str", **params) -> QuantumCircuit:
    """Turn a circuit, registry name or QASM path into a live circuit.

    Args:
        circuit: A :class:`QuantumCircuit` (returned unchanged), a registry
            name (``"[[5,1,3]]"``, ``"ghz"``, a plugin name, …), a
            parameterised name (``"random-layered:q=8:d=12"``) or the path
            of a QASM file.
        params: Keyword parameters forwarded to the registry factory (e.g.
            ``num_qubits`` for ``ghz``).  Parameters embedded in the name
            take precedence over these keyword defaults.

    Raises:
        CircuitError: When the string is neither a registered name nor an
            existing file (the message carries the did-you-mean suggestion),
            or when the factory rejects the given parameters.
    """
    if isinstance(circuit, QuantumCircuit):
        return circuit
    base, name_params = parse_circuit_name(circuit)
    if base in CIRCUITS:
        merged = {**params, **name_params}
        try:
            return CIRCUITS.get(base)(**merged)
        except TypeError as exc:
            raise CircuitError(
                f"circuit {base!r} rejected parameters {merged!r}: {exc}"
            ) from exc
    path = Path(circuit)
    if path.exists():
        from repro.qasm.parser import parse_qasm_file

        return parse_qasm_file(path)
    try:
        CIRCUITS.get(circuit)  # raises with the did-you-mean suggestion
    except KeyError as exc:
        raise CircuitError(f"{exc.args[0]}; and no QASM file exists at {path}") from exc
    raise CircuitError(f"cannot resolve circuit {circuit!r}")  # pragma: no cover
