"""The benchmark-circuit registry: named factories for workload circuits.

Entries are factories ``(**params) -> QuantumCircuit``.  Built-ins:

* the paper's six QECC encoder benchmarks, under their code names
  (``"[[5,1,3]]"`` … ``"[[23,1,7]]"``), in the paper's table order;
* ``ghz`` — GHZ chains (fully sequential two-qubit gates);
* ``ripple`` — ripple dependency chains with repeatable rounds;
* ``qft-like`` — the all-to-all interaction pattern of a QFT;
* ``random`` — seeded random circuits with a controlled two-qubit fraction.

:func:`resolve_circuit` also accepts a live circuit (returned unchanged) or
the path of a QASM file, which keeps the CLI and
:class:`~repro.runner.spec.ExperimentSpec` semantics: any string that is not
a registered name is treated as a file path.
"""

from __future__ import annotations

from pathlib import Path

from repro.circuits.builders import ghz_circuit, qft_like_circuit, ripple_chain_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qecc import BENCHMARK_NAMES, qecc_encoder
from repro.circuits.random_circuits import random_circuit
from repro.errors import CircuitError
from repro.pipeline.registry import Registry

#: The circuit registry: QECC suite + generators.
CIRCUITS = Registry("circuit")


def _qecc_factory(name: str):
    def build(**params) -> QuantumCircuit:
        if params:
            raise CircuitError(f"QECC benchmark {name!r} takes no parameters")
        return qecc_encoder(name)

    build.__name__ = f"qecc_{name}"
    build.__doc__ = f"The paper's {name} QECC encoder benchmark."
    return build


for _name in BENCHMARK_NAMES:
    CIRCUITS.register(_name, _qecc_factory(_name))

@CIRCUITS.register("ghz")
def ghz(num_qubits: int = 5) -> QuantumCircuit:
    """A GHZ chain: ``num_qubits`` fully sequential two-qubit gates."""
    return ghz_circuit(num_qubits)


@CIRCUITS.register("ripple")
def ripple(num_qubits: int = 5, *, rounds: int = 1) -> QuantumCircuit:
    """A ripple dependency chain repeated for ``rounds`` rounds."""
    return ripple_chain_circuit(num_qubits, rounds=rounds)


@CIRCUITS.register("qft-like")
def qft_like(num_qubits: int = 5) -> QuantumCircuit:
    """The all-to-all controlled-interaction pattern of a QFT."""
    return qft_like_circuit(num_qubits)


@CIRCUITS.register("random")
def random(
    num_qubits: int = 6,
    num_gates: int = 24,
    *,
    two_qubit_fraction: float = 0.6,
    seed: int = 0,
) -> QuantumCircuit:
    """A seeded random circuit with a controlled two-qubit gate fraction."""
    return random_circuit(
        num_qubits, num_gates, two_qubit_fraction=two_qubit_fraction, seed=seed
    )


def resolve_circuit(circuit: "QuantumCircuit | str", **params) -> QuantumCircuit:
    """Turn a circuit, registry name or QASM path into a live circuit.

    Args:
        circuit: A :class:`QuantumCircuit` (returned unchanged), a registry
            name (``"[[5,1,3]]"``, ``"ghz"``, a plugin name, …) or the path
            of a QASM file.
        params: Keyword parameters forwarded to the registry factory (e.g.
            ``num_qubits`` for ``ghz``).

    Raises:
        CircuitError: When the string is neither a registered name nor an
            existing file (the message carries the did-you-mean suggestion).
    """
    if isinstance(circuit, QuantumCircuit):
        return circuit
    if circuit in CIRCUITS:
        return CIRCUITS.get(circuit)(**params)
    path = Path(circuit)
    if path.exists():
        from repro.qasm.parser import parse_qasm_file

        return parse_qasm_file(path)
    try:
        CIRCUITS.get(circuit)  # raises with the did-you-mean suggestion
    except KeyError as exc:
        raise CircuitError(f"{exc.args[0]}; and no QASM file exists at {path}") from exc
    raise CircuitError(f"cannot resolve circuit {circuit!r}")  # pragma: no cover
