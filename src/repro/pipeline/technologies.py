"""The technology registry: named physical machine descriptions (PMDs).

Entries are frozen :class:`~repro.technology.TechnologyParams` instances.
Built-ins:

* ``paper`` — the PMD every experiment in the paper uses (Section V.A).
* ``legacy`` — the prior-art tools' fabric: no ion multiplexing (channel and
  junction capacity 1), otherwise the paper delays.
* ``fast-turn`` — turns cost the same as a straight move (the optimistic end
  of the paper's 5x-30x turn-cost range).
* ``slow-turn`` — turns at 30x a move (the pessimistic end of that range).
* ``slow-2q`` — two-qubit gates at 300 us instead of 100 us, shifting the
  gate/routing balance toward gate delay.
* ``cap-1`` — the paper delays but no multiplexing, isolating the capacity
  mechanism from the prior tools' other differences.

A fully custom PMD is built with
:meth:`~repro.technology.TechnologyParams.from_dict` and registered like any
plugin, after which it is selectable by name everywhere — options, specs,
sweeps, ``qspr-map run/sweep --technology/--technologies`` and the service
API::

    from repro.pipeline import TECHNOLOGIES
    from repro.technology import TechnologyParams

    TECHNOLOGIES.register(
        "my-pmd", TechnologyParams.from_dict({"turn_delay": 3.0})
    )
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.pipeline.registry import Registry
from repro.technology import LEGACY_TECHNOLOGY, PAPER_TECHNOLOGY, TechnologyParams

#: The technology registry.  Built-ins: the paper PMD and named variants.
TECHNOLOGIES = Registry("technology")

TECHNOLOGIES.register("paper", PAPER_TECHNOLOGY)
TECHNOLOGIES.register("legacy", LEGACY_TECHNOLOGY)
TECHNOLOGIES.register("fast-turn", PAPER_TECHNOLOGY.with_turn_delay(1.0))
TECHNOLOGIES.register("slow-turn", PAPER_TECHNOLOGY.with_turn_delay(30.0))
TECHNOLOGIES.register(
    "slow-2q", TechnologyParams.from_dict({"two_qubit_gate_delay": 300.0})
)
TECHNOLOGIES.register("cap-1", PAPER_TECHNOLOGY.with_channel_capacity(1))


def resolve_technology(
    selector: "str | TechnologyParams | dict",
    *,
    error: type[Exception] = MappingError,
) -> TechnologyParams:
    """The :class:`TechnologyParams` selected by ``selector``.

    Accepts a registry name, an already-built :class:`TechnologyParams` or a
    plain dict of parameter overrides (a fully custom PMD, see
    :meth:`TechnologyParams.from_dict`).

    Raises:
        MappingError: On an unknown registry name (with a did-you-mean
            suggestion), an invalid custom-PMD dict or an unsupported
            selector type.
    """
    if isinstance(selector, TechnologyParams):
        return selector
    if isinstance(selector, dict):
        try:
            return TechnologyParams.from_dict(selector)
        except ValueError as exc:
            raise error(f"invalid custom technology: {exc}") from exc
    if not isinstance(selector, str):
        raise error(
            f"technology must be a registry name, a TechnologyParams or a "
            f"parameter dict, got {selector!r}"
        )
    return TECHNOLOGIES.resolve(selector, error=error)
