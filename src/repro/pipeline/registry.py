"""A generic string-keyed plugin registry.

Every extension point of the mapping pipeline — mappers, placers, fabrics
and benchmark circuits — is a :class:`Registry`: a named table from string
keys to plugin objects (usually factories).  Registration works either as a
decorator::

    from repro.pipeline import PLACERS

    @PLACERS.register("spiral")
    def spiral_placer(ctx):
        ...

or as a plain call (``PLACERS.register("spiral", spiral_placer)``).  Lookups
of unknown names raise :class:`KeyError` with a ``difflib``-powered
did-you-mean suggestion, so a typo like ``"centre"`` points at ``"center"``
instead of failing silently.

Registries preserve registration order (the QECC circuit registry keeps the
paper's table order that way) and refuse duplicate names unless
``overwrite=True`` is passed explicitly.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Iterator, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


class RegistryError(ReproError):
    """Invalid registration (duplicate name, empty name, non-string key)."""


class Registry:
    """An ordered, string-keyed table of named plugins.

    Args:
        kind: Singular noun naming what the registry holds (``"mapper"``,
            ``"placer"``, …); used in error messages and listings.

    Example::

        >>> colors = Registry("color")
        >>> @colors.register("red")
        ... def red():
        ...     return "#ff0000"
        >>> colors.names()
        ('red',)
        >>> colors.get("red")()
        '#ff0000'
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, obj: T | None = None, *, overwrite: bool = False
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable as a decorator.

        Args:
            name: Registry key.  Must be a non-empty string and — unless
                ``overwrite`` is set — not already taken.
            obj: The plugin to register.  When omitted, returns a decorator
                that registers its target and hands it back unchanged.
            overwrite: Replace an existing entry instead of raising.

        Raises:
            RegistryError: On an empty/non-string name or a duplicate
                registration without ``overwrite``.
        """
        if not isinstance(name, str) or not name:
            raise RegistryError(f"{self.kind} names must be non-empty strings, got {name!r}")
        if obj is None:

            def decorator(target: T) -> T:
                self.register(name, target, overwrite=overwrite)
                return target

            return decorator
        if name in self._entries and not overwrite:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (mainly for tests and plugins).

        Raises:
            KeyError: If the name is not registered (with a suggestion).
        """
        if name not in self._entries:
            self._missing(name)
        del self._entries[name]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Any:
        """The plugin registered under ``name``.

        Raises:
            KeyError: If the name is unknown; the message includes a
                did-you-mean suggestion and the known names.
        """
        try:
            return self._entries[name]
        except KeyError:
            self._missing(name)

    def resolve(self, name: str, *, error: type[Exception] | None = None) -> Any:
        """:meth:`get`, optionally re-raising as a domain error type.

        Args:
            name: Registry key to look up.
            error: Exception class (e.g. ``MappingError``) to raise instead
                of :class:`KeyError`, keeping the did-you-mean message.
        """
        try:
            return self.get(name)
        except KeyError as exc:
            if error is None:
                raise
            raise error(exc.args[0]) from exc

    def suggest(self, name: str) -> str | None:
        """The closest registered name to ``name``, if any is close enough."""
        if not isinstance(name, str):
            return None
        matches = difflib.get_close_matches(name, self._entries, n=1, cutoff=0.5)
        return matches[0] if matches else None

    def _missing(self, name: str) -> None:
        suggestion = self.suggest(name)
        hint = f"; did you mean {suggestion!r}?" if suggestion else ""
        known = ", ".join(self._entries) or "<none>"
        raise KeyError(f"unknown {self.kind} {name!r}{hint} (known: {known})")

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    def items(self) -> tuple[tuple[str, Any], ...]:
        """``(name, plugin)`` pairs, in registration order."""
        return tuple(self._entries.items())

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self._entries)!r})"
