"""The scheduler registry: named scheduling-policy strategies.

Entries are :class:`~repro.scheduling.policies.SchedulingPolicy` instances
(stateless strategy objects).  Built-ins are the paper's four policies:

* ``qspr`` — dependents + longest downstream path delay (Section III).
* ``quale-alap`` — QUALE's backward as-late-as-possible extraction.
* ``qpos-dependents`` — QPOS's ASAP issue by dependent count.
* ``qpos-path-delay`` — the reference-[5] tweak (downstream path delay).

A third-party policy registers like any plugin and is then selectable by
name everywhere — ``MapperOptions(scheduler=...)``, experiment specs and
sweeps, ``qspr-map run/sweep --scheduler(s)`` and the service API::

    from repro.pipeline import SCHEDULERS
    from repro.scheduling.policies import SchedulingPolicy

    @SCHEDULERS.register("fifo")
    class FifoPolicy(SchedulingPolicy):
        name = "fifo"

        def priorities(self, qidg, technology):
            return {node: 0.0 for node in qidg.graph.nodes}

Registering a *class* stores the class; :func:`resolve_scheduler` hands back
an instance either way, so both styles work.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.pipeline.registry import Registry
from repro.scheduling.policies import PAPER_POLICIES, SchedulingPolicy
from repro.scheduling.priority import PriorityPolicy

#: The scheduler registry.  Built-ins: the paper's four policies.
SCHEDULERS = Registry("scheduler")

for _policy in PAPER_POLICIES:
    SCHEDULERS.register(_policy.name, _policy)


def resolve_scheduler(
    selector: "str | PriorityPolicy | SchedulingPolicy",
    *,
    error: type[Exception] = SchedulingError,
) -> SchedulingPolicy:
    """The :class:`SchedulingPolicy` selected by ``selector``.

    Accepts a registry name, a legacy :class:`PriorityPolicy` enum member
    (whose value is a registry name) or an already-built policy object.

    Raises:
        SchedulingError: On an unknown registry name (with a did-you-mean
            suggestion) or an unsupported selector type.  Pass ``error`` to
            raise a different domain error (specs raise ``MappingError``).
    """
    if isinstance(selector, SchedulingPolicy):
        return selector
    if isinstance(selector, PriorityPolicy):
        selector = selector.value
    if not isinstance(selector, str):
        raise error(
            f"scheduler must be a registry name, a PriorityPolicy or a "
            f"SchedulingPolicy, got {selector!r}"
        )
    entry = SCHEDULERS.resolve(selector, error=error)
    if isinstance(entry, type):  # a registered class: instantiate fresh
        entry = entry()
    return entry
