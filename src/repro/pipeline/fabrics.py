"""The fabric registry: named factories for ion-trap fabric topologies.

Entries are factories ``(**params) -> Fabric``.  Built-ins:

* ``quale`` — the paper's 45×85-cell QUALE fabric (no parameters).
* ``grid`` — parametric junction lattice (``junction_rows``,
  ``junction_cols``, ``channel_length``, ``traps_per_channel``).
* ``small`` — a compact 4×4 default grid for tests and examples.
* ``linear`` — a two-row strip, the worst case for routing.

:func:`resolve_fabric` additionally understands geometry labels of the form
``"<rows>x<cols>c<length>"`` (the :attr:`~repro.runner.spec.FabricCell.label`
format), so ``repro.map_circuit(circuit, "4x4c3")`` builds a 4×4 grid.
"""

from __future__ import annotations

import re

from repro.errors import FabricError
from repro.fabric.builder import (
    FabricSpec,
    build_fabric,
    linear_fabric,
    quale_fabric,
    small_fabric,
)
from repro.fabric.fabric import Fabric
from repro.pipeline.registry import Registry

#: The fabric registry.  Built-ins: ``quale``, ``grid``, ``small``, ``linear``.
FABRICS = Registry("fabric")

FABRICS.register("quale", quale_fabric)
FABRICS.register("small", small_fabric)
FABRICS.register("linear", linear_fabric)


@FABRICS.register("grid")
def grid_fabric(
    junction_rows: int = 4,
    junction_cols: int = 4,
    channel_length: int = 3,
    traps_per_channel: int = 2,
    name: str | None = None,
) -> Fabric:
    """A parametric regular junction lattice (see :class:`FabricSpec`)."""
    return build_fabric(
        FabricSpec(
            name=name or f"grid-{junction_rows}x{junction_cols}c{channel_length}",
            junction_rows=junction_rows,
            junction_cols=junction_cols,
            channel_length=channel_length,
            traps_per_channel=traps_per_channel,
        )
    )


#: ``"<rows>x<cols>c<length>"`` geometry labels accepted by resolve_fabric.
_GEOMETRY_LABEL = re.compile(r"^(\d+)x(\d+)c(\d+)$")


def resolve_fabric(fabric: "Fabric | str", **params) -> Fabric:
    """Turn a fabric, registry name or geometry label into a live fabric.

    Args:
        fabric: A built :class:`Fabric` (returned unchanged), a registry
            name (``"quale"``, ``"grid"``, a plugin name, …) or a geometry
            label like ``"4x4c3"``.
        params: Keyword parameters forwarded to the registry factory.

    Raises:
        FabricError: On an unknown name (with a did-you-mean suggestion).
    """
    if isinstance(fabric, Fabric):
        return fabric
    match = _GEOMETRY_LABEL.match(fabric)
    if match is not None and fabric not in FABRICS:
        rows, cols, length = (int(group) for group in match.groups())
        return grid_fabric(
            junction_rows=rows, junction_cols=cols, channel_length=length, **params
        )
    return FABRICS.resolve(fabric, error=FabricError)(**params)
