"""The staged mapping pipeline: build-QIDG → place → simulate → package-result.

:class:`MappingPipeline` is the engine behind every mapper in the package:
:class:`~repro.mapper.qspr.QsprMapper` (and therefore the QUALE/QPOS presets)
delegates to :meth:`MappingPipeline.standard`.  Each stage is a named
function over the shared :class:`~repro.pipeline.context.PipelineContext`;
observers receive start/finish callbacks per stage and the per-stage
wall-clock timings are recorded in ``ctx.stage_seconds`` and on the final
:class:`~repro.mapper.result.MappingResult`.

The place stage resolves the placer *by name* through the
:data:`~repro.pipeline.placers.PLACERS` registry, so a decorator-registered
third-party strategy participates without any core change.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import MappingError
from repro.circuits.circuit import QuantumCircuit
from repro.fabric.fabric import Fabric
from repro.mapper.options import MapperOptions
from repro.mapper.result import MappingResult
from repro.pipeline.context import PipelineContext, PipelineObserver, PlacementOutcome
from repro.pipeline.placers import PLACERS
from repro.placement.base import Placement
from repro.qidg.analysis import critical_path_latency
from repro.qidg.graph import build_qidg


@dataclass(frozen=True)
class Stage:
    """One named step of a pipeline.

    Attributes:
        name: Stage name, used in timings, observer callbacks and errors.
        run: The stage body; mutates the shared context in place.
    """

    name: str
    run: Callable[[PipelineContext], None]


# ----------------------------------------------------------------------
# Standard stages
# ----------------------------------------------------------------------
def _build_qidg_stage(ctx: PipelineContext) -> None:
    """Build the dependency graph, the ideal bound and the forward simulator."""
    ctx.qidg = build_qidg(ctx.circuit)
    ctx.ideal_latency = critical_path_latency(ctx.qidg, ctx.options.technology)
    ctx.forward_sim = ctx.make_simulator()


def _place_stage(ctx: PipelineContext) -> None:
    """Resolve the placer by name and run its strategy.

    A strategy returning a bare :class:`~repro.placement.base.Placement` is
    validated here and evaluated by the simulate stage; a strategy returning
    a :class:`~repro.pipeline.context.PlacementOutcome` already simulated.
    """
    strategy = PLACERS.resolve(ctx.options.placer_name, error=MappingError)
    produced = strategy(ctx)
    if isinstance(produced, PlacementOutcome):
        ctx.outcome = produced
    elif isinstance(produced, Placement):
        produced.validate(ctx.circuit, ctx.fabric)
        ctx.placement = produced
    else:
        raise MappingError(
            f"placer {ctx.options.placer_name!r} returned {type(produced).__name__}; "
            "expected a Placement or a PlacementOutcome"
        )


def _simulate_stage(ctx: PipelineContext) -> None:
    """Evaluate the chosen placement, unless the placer already did.

    Either way the routing share of the evaluating stage's wall-clock is
    recorded as a ``<stage>.routing`` sub-key of ``stage_seconds``, so the
    benchmark harness can attribute mapping time to the routing core.
    """
    if ctx.outcome is not None:
        # A search placer simulated during the place stage; attribute the
        # winning pass's routing time there.
        ctx.stage_seconds["place.routing"] = ctx.outcome.routing_seconds
        return
    if ctx.placement is None:
        raise MappingError(
            f"placer {ctx.options.placer_name!r} produced neither a placement nor an outcome"
        )
    ctx.outcome = PlacementOutcome.from_simulation(ctx.simulate(ctx.placement))
    ctx.stage_seconds["simulate.routing"] = ctx.outcome.routing_seconds


def _package_result_stage(ctx: PipelineContext) -> None:
    """Package the winning outcome into a :class:`MappingResult`."""
    outcome = ctx.outcome
    assert outcome is not None and ctx.ideal_latency is not None
    ctx.result = MappingResult(
        circuit_name=ctx.circuit.name,
        fabric_name=ctx.fabric.name,
        mapper_name=ctx.mapper_name,
        latency=outcome.latency,
        ideal_latency=ctx.ideal_latency,
        schedule=outcome.schedule,
        initial_placement=outcome.initial_placement,
        final_placement=outcome.final_placement,
        trace=outcome.trace,
        records=outcome.records,
        direction=outcome.direction,
        placement_runs=outcome.placement_runs,
        total_moves=outcome.total_moves,
        total_turns=outcome.total_turns,
        total_congestion_delay=outcome.total_congestion_delay,
        cpu_seconds=outcome.cpu_seconds,
        options=ctx.options,
        stage_seconds=ctx.stage_seconds,
        routing_seconds=outcome.routing_seconds,
        routing_stats=outcome.routing_stats,
        event_stats=outcome.event_stats,
    )


#: The standard stage sequence, in execution order.
STANDARD_STAGES: tuple[Stage, ...] = (
    Stage("build-qidg", _build_qidg_stage),
    Stage("place", _place_stage),
    Stage("simulate", _simulate_stage),
    Stage("package-result", _package_result_stage),
)


class MappingPipeline:
    """A composable sequence of mapping stages.

    Example::

        from repro.pipeline import MappingPipeline

        pipeline = MappingPipeline.standard()
        result = pipeline.run(circuit, fabric, options=MapperOptions(placer="center"))

    Custom pipelines insert extra stages (say, a QIDG rewrite between
    build-qidg and place) by constructing the class with their own stage
    tuple; :meth:`with_stage` inserts into a copy.
    """

    def __init__(
        self,
        stages: Sequence[Stage] = STANDARD_STAGES,
        observers: Sequence[PipelineObserver] = (),
    ) -> None:
        self.stages = tuple(stages)
        self.observers = tuple(observers)

    @classmethod
    def standard(cls, observers: Sequence[PipelineObserver] = ()) -> "MappingPipeline":
        """The canonical build-QIDG → place → simulate → package pipeline."""
        return cls(STANDARD_STAGES, observers)

    def with_observer(self, observer: PipelineObserver) -> "MappingPipeline":
        """A copy of this pipeline with one more observer attached."""
        return MappingPipeline(self.stages, (*self.observers, observer))

    def with_stage(self, stage: Stage, *, after: str | None = None) -> "MappingPipeline":
        """A copy with ``stage`` inserted after the named stage (or appended).

        Raises:
            MappingError: If ``after`` names no existing stage.
        """
        if after is None:
            return MappingPipeline((*self.stages, stage), self.observers)
        names = [existing.name for existing in self.stages]
        if after not in names:
            raise MappingError(
                f"unknown stage {after!r}; pipeline stages: {', '.join(names)}"
            )
        index = names.index(after) + 1
        return MappingPipeline(
            (*self.stages[:index], stage, *self.stages[index:]), self.observers
        )

    def stage_names(self) -> tuple[str, ...]:
        """The stage names, in execution order."""
        return tuple(stage.name for stage in self.stages)

    def run(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        *,
        options: MapperOptions | None = None,
        mapper_name: str = "QSPR",
    ) -> MappingResult:
        """Map ``circuit`` onto ``fabric`` through every stage.

        Args:
            circuit: The circuit to map (must contain instructions).
            fabric: The target fabric.
            options: Mapping options; defaults to ``MapperOptions()``.
            mapper_name: Name stamped on the result.

        Returns:
            The packaged :class:`~repro.mapper.result.MappingResult`, with
            ``cpu_seconds`` covering the whole run and ``stage_seconds``
            holding the per-stage wall-clock breakdown.  Besides the coarse
            stages, ``stage_seconds`` carries dotted sub-keys (e.g.
            ``simulate.routing``) attributing a stage's wall-clock to the
            routing core.

        Raises:
            MappingError: On an empty circuit, an unknown placer name, or a
                pipeline that fails to produce a result.
        """
        if circuit.num_instructions == 0:
            raise MappingError("cannot map an empty circuit")
        started = _time.perf_counter()
        ctx = PipelineContext(
            circuit=circuit,
            fabric=fabric,
            options=options if options is not None else MapperOptions(),
            mapper_name=mapper_name,
        )
        for stage in self.stages:
            for observer in self.observers:
                observer.stage_started(stage.name, ctx)
            stage_started = _time.perf_counter()
            stage.run(ctx)
            elapsed = _time.perf_counter() - stage_started
            ctx.stage_seconds[stage.name] = elapsed
            for observer in self.observers:
                observer.stage_finished(stage.name, ctx, elapsed)
        if ctx.result is None:
            raise MappingError(
                "the pipeline finished without packaging a result; "
                "custom stage lists must end with a package-result stage"
            )
        ctx.result.cpu_seconds = _time.perf_counter() - started
        return ctx.result
