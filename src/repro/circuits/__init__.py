"""Quantum circuit object model and benchmark circuits.

The central class is :class:`QuantumCircuit`, an ordered list of
:class:`Instruction` objects over named :class:`Qubit` operands.  Gate
semantics (arity, inverses) live in the registry in :mod:`repro.circuits.gates`.
Benchmark generators:

* :mod:`repro.circuits.qecc` — the six QECC encoding circuits used by the
  paper's evaluation (Table 1 / Table 2).
* :mod:`repro.circuits.random_circuits` — random circuits for stress tests and
  property-based testing.
* :mod:`repro.circuits.builders` — convenience constructors (GHZ, QFT-like
  interaction patterns, ripple chains) used by examples and tests.
"""

from repro.circuits.gates import GateSpec, get_gate, is_known_gate, GATE_REGISTRY
from repro.circuits.circuit import Instruction, QuantumCircuit, Qubit
from repro.circuits.builders import ghz_circuit, ripple_chain_circuit, qft_like_circuit
from repro.circuits.random_circuits import random_circuit

__all__ = [
    "GateSpec",
    "GATE_REGISTRY",
    "get_gate",
    "is_known_gate",
    "Qubit",
    "Instruction",
    "QuantumCircuit",
    "ghz_circuit",
    "ripple_chain_circuit",
    "qft_like_circuit",
    "random_circuit",
]
