"""Quantum circuit object model.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects
over named :class:`Qubit` operands.  The instruction order is the *program
order*: the dependency graph (:mod:`repro.qidg`) derives its edges from the
per-qubit ordering of instructions, exactly as the paper's QIDG does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.circuits.gates import GateSpec, get_gate
from repro.errors import CircuitError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.qasm.ast import QasmProgram


@dataclass(frozen=True)
class Qubit:
    """A named qubit of a circuit.

    Attributes:
        name: Unique identifier within the circuit (e.g. ``q3``).
        index: Position in declaration order, starting from 0.
        initial_value: Optional classical initial value (0/1) from the
            ``QUBIT name,value`` declaration form; ``None`` for data qubits
            whose state is an input to the circuit.
    """

    name: str
    index: int
    initial_value: int | None = None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Instruction:
    """A single gate or measurement applied to one or two qubits.

    Attributes:
        index: Position in program order, starting from 0.  Unique within a
            circuit and used as the node identifier in the QIDG.
        gate: The gate specification.
        qubits: Operand qubits; for controlled gates the control comes first.
        label: Optional human-readable label carried into traces.
    """

    index: int
    gate: GateSpec
    qubits: tuple[Qubit, ...]
    label: str | None = None

    def __post_init__(self) -> None:
        if len(self.qubits) != self.gate.arity:
            raise CircuitError(
                f"gate {self.gate.name} takes {self.gate.arity} operand(s), "
                f"got {len(self.qubits)}"
            )
        if len({q.name for q in self.qubits}) != len(self.qubits):
            raise CircuitError(
                f"instruction {self.index}: duplicate operand in {self.gate.name}"
            )

    @property
    def arity(self) -> int:
        """Number of qubit operands."""
        return self.gate.arity

    @property
    def is_two_qubit(self) -> bool:
        """Whether the instruction involves two qubits (needs routing)."""
        return self.gate.arity == 2

    @property
    def is_measurement(self) -> bool:
        """Whether the instruction is a measurement."""
        return self.gate.is_measurement

    @property
    def control(self) -> Qubit:
        """Control (source) operand of a two-qubit gate."""
        if not self.is_two_qubit:
            raise CircuitError(f"instruction {self.index} has no control operand")
        return self.qubits[0]

    @property
    def target(self) -> Qubit:
        """Target (destination) operand of a two-qubit gate."""
        if not self.is_two_qubit:
            raise CircuitError(f"instruction {self.index} has no target operand")
        return self.qubits[1]

    @property
    def qubit_names(self) -> tuple[str, ...]:
        """Names of the operand qubits, in order."""
        return tuple(q.name for q in self.qubits)

    def __str__(self) -> str:
        return f"{self.gate.name} {','.join(self.qubit_names)}"


class QuantumCircuit:
    """An ordered quantum circuit over named qubits.

    The class supports incremental construction::

        circuit = QuantumCircuit("bell")
        a = circuit.add_qubit("a")
        b = circuit.add_qubit("b", initial_value=0)
        circuit.h(a)
        circuit.cx(a, b)

    and conversion from/to the QASM dialect via
    :meth:`from_program` / :meth:`repro.qasm.write_qasm`.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._qubits: list[Qubit] = []
        self._by_name: dict[str, Qubit] = {}
        self._instructions: list[Instruction] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_qubit(self, name: str, initial_value: int | None = None) -> Qubit:
        """Declare a new qubit and return it.

        Raises:
            CircuitError: If a qubit with the same name already exists or the
                initial value is not 0/1.
        """
        if name in self._by_name:
            raise CircuitError(f"qubit {name!r} declared twice")
        if initial_value not in (None, 0, 1):
            raise CircuitError(f"invalid initial value for {name!r}: {initial_value!r}")
        qubit = Qubit(name, len(self._qubits), initial_value)
        self._qubits.append(qubit)
        self._by_name[name] = qubit
        return qubit

    def add_qubits(self, count: int, prefix: str = "q", initial_value: int | None = None) -> list[Qubit]:
        """Declare ``count`` qubits named ``prefix0`` .. ``prefix{count-1}``."""
        return [self.add_qubit(f"{prefix}{i}", initial_value) for i in range(count)]

    def _resolve(self, qubit: Qubit | str) -> Qubit:
        if isinstance(qubit, Qubit):
            resolved = self._by_name.get(qubit.name)
            if resolved is None or resolved is not qubit and resolved != qubit:
                raise CircuitError(f"qubit {qubit.name!r} does not belong to this circuit")
            return resolved
        resolved = self._by_name.get(qubit)
        if resolved is None:
            raise CircuitError(f"qubit {qubit!r} is not declared")
        return resolved

    def append(self, gate_name: str, *qubits: Qubit | str, label: str | None = None) -> Instruction:
        """Append a gate application in program order and return it.

        Args:
            gate_name: Gate mnemonic or alias (case-insensitive).
            qubits: Operand qubits (objects or names), control first.
            label: Optional label carried into traces.
        """
        gate = get_gate(gate_name)
        operands = tuple(self._resolve(q) for q in qubits)
        instruction = Instruction(len(self._instructions), gate, operands, label)
        self._instructions.append(instruction)
        return instruction

    # Convenience wrappers for the common gate set -----------------------
    def h(self, qubit: Qubit | str) -> Instruction:
        """Append a Hadamard gate."""
        return self.append("H", qubit)

    def x(self, qubit: Qubit | str) -> Instruction:
        """Append a Pauli-X gate."""
        return self.append("X", qubit)

    def y(self, qubit: Qubit | str) -> Instruction:
        """Append a Pauli-Y gate."""
        return self.append("Y", qubit)

    def z(self, qubit: Qubit | str) -> Instruction:
        """Append a Pauli-Z gate."""
        return self.append("Z", qubit)

    def s(self, qubit: Qubit | str) -> Instruction:
        """Append an S (phase) gate."""
        return self.append("S", qubit)

    def t(self, qubit: Qubit | str) -> Instruction:
        """Append a T (pi/8) gate."""
        return self.append("T", qubit)

    def cx(self, control: Qubit | str, target: Qubit | str) -> Instruction:
        """Append a controlled-X (CNOT) gate."""
        return self.append("C-X", control, target)

    def cy(self, control: Qubit | str, target: Qubit | str) -> Instruction:
        """Append a controlled-Y gate."""
        return self.append("C-Y", control, target)

    def cz(self, control: Qubit | str, target: Qubit | str) -> Instruction:
        """Append a controlled-Z gate."""
        return self.append("C-Z", control, target)

    def swap(self, a: Qubit | str, b: Qubit | str) -> Instruction:
        """Append a SWAP gate."""
        return self.append("SWAP", a, b)

    def measure(self, qubit: Qubit | str) -> Instruction:
        """Append a measurement."""
        return self.append("MEASURE", qubit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def qubits(self) -> tuple[Qubit, ...]:
        """All declared qubits in declaration order."""
        return tuple(self._qubits)

    @property
    def num_qubits(self) -> int:
        """Number of declared qubits."""
        return len(self._qubits)

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        """All instructions in program order."""
        return tuple(self._instructions)

    @property
    def num_instructions(self) -> int:
        """Number of instructions."""
        return len(self._instructions)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit instructions (the ones that require routing)."""
        return sum(1 for instr in self._instructions if instr.is_two_qubit)

    @property
    def num_single_qubit_gates(self) -> int:
        """Number of single-qubit, non-measurement instructions."""
        return sum(
            1
            for instr in self._instructions
            if not instr.is_two_qubit and not instr.is_measurement
        )

    def qubit(self, name: str) -> Qubit:
        """Look up a declared qubit by name.

        Raises:
            CircuitError: If the qubit does not exist.
        """
        return self._resolve(name)

    def has_qubit(self, name: str) -> bool:
        """Whether a qubit named ``name`` is declared."""
        return name in self._by_name

    def instructions_on(self, qubit: Qubit | str) -> list[Instruction]:
        """All instructions that act on ``qubit``, in program order."""
        resolved = self._resolve(qubit)
        return [instr for instr in self._instructions if resolved in instr.qubits]

    def interaction_pairs(self) -> dict[frozenset[str], int]:
        """Count of two-qubit interactions per unordered qubit pair.

        Used by placement heuristics and analysis reports to characterise how
        strongly qubits are coupled.
        """
        counts: dict[frozenset[str], int] = {}
        for instr in self._instructions:
            if instr.is_two_qubit:
                key = frozenset(instr.qubit_names)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"instructions={self.num_instructions})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.qubits == other.qubits
            and [(i.gate.name, i.qubit_names) for i in self._instructions]
            == [(i.gate.name, i.qubit_names) for i in other._instructions]
        )

    def __hash__(self) -> int:  # pragma: no cover - circuits are mutable containers
        return id(self)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def inverse(self, name: str | None = None) -> "QuantumCircuit":
        """Return the uncompute circuit: reversed order, inverted gates.

        Measurements cannot be inverted; circuits containing measurements
        raise :class:`CircuitError`.
        """
        inverse_circuit = QuantumCircuit(name or f"{self.name}_inverse")
        for qubit in self._qubits:
            inverse_circuit.add_qubit(qubit.name, qubit.initial_value)
        for instruction in reversed(self._instructions):
            if instruction.is_measurement:
                raise CircuitError("cannot invert a circuit containing measurements")
            inverse_circuit.append(
                instruction.gate.inverse_name,
                *[q.name for q in instruction.qubits],
                label=instruction.label,
            )
        return inverse_circuit

    def subcircuit(self, instruction_indices: Sequence[int], name: str | None = None) -> "QuantumCircuit":
        """Return a new circuit containing only the selected instructions.

        Qubit declarations are preserved in full so indices remain stable.
        """
        selected = sorted(set(instruction_indices))
        sub = QuantumCircuit(name or f"{self.name}_sub")
        for qubit in self._qubits:
            sub.add_qubit(qubit.name, qubit.initial_value)
        for index in selected:
            if not 0 <= index < len(self._instructions):
                raise CircuitError(f"instruction index {index} out of range")
            instruction = self._instructions[index]
            sub.append(
                instruction.gate.name,
                *[q.name for q in instruction.qubits],
                label=instruction.label,
            )
        return sub

    # ------------------------------------------------------------------
    # QASM interoperability
    # ------------------------------------------------------------------
    @classmethod
    def from_program(cls, program: "QasmProgram", *, name: str = "circuit") -> "QuantumCircuit":
        """Lower a parsed :class:`QasmProgram` into a circuit.

        Raises:
            CircuitError: For duplicate declarations, unknown gates or
                references to undeclared qubits.
        """
        from repro.qasm.ast import GateStatement, MeasureStatement, QubitDeclaration

        circuit = cls(name)
        for statement in program:
            if isinstance(statement, QubitDeclaration):
                circuit.add_qubit(statement.name, statement.initial)
            elif isinstance(statement, GateStatement):
                circuit.append(statement.gate, *statement.operands)
            elif isinstance(statement, MeasureStatement):
                circuit.measure(statement.qubit)
            else:  # pragma: no cover - exhaustive over the AST
                raise CircuitError(f"unsupported statement: {statement!r}")
        return circuit

    def to_qasm(self) -> str:
        """Serialise the circuit to QASM text (see :mod:`repro.qasm.writer`)."""
        from repro.qasm.writer import write_qasm

        return write_qasm(self)

    @classmethod
    def from_interactions(
        cls,
        num_qubits: int,
        interactions: Iterable[tuple[int, int]],
        *,
        gate: str = "C-X",
        name: str = "interaction_circuit",
    ) -> "QuantumCircuit":
        """Build a circuit from a list of (control, target) index pairs.

        Convenience constructor used by tests and synthetic workloads.
        """
        circuit = cls(name)
        qubits = circuit.add_qubits(num_qubits)
        for control, target in interactions:
            circuit.append(gate, qubits[control], qubits[target])
        return circuit
