"""Convenience circuit constructors used by examples, tests and workloads.

These are not part of the paper's benchmark suite but exercise the same code
paths with easily-understood interaction patterns:

* :func:`ghz_circuit` — a star-shaped interaction pattern (one hub qubit).
* :func:`ripple_chain_circuit` — a nearest-neighbour chain, the most
  sequential pattern possible.
* :func:`qft_like_circuit` — an all-to-all controlled-phase pattern, the most
  congested pattern possible.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """Build an ``num_qubits``-qubit GHZ preparation circuit.

    One Hadamard on the hub qubit followed by a CNOT from the hub to every
    other qubit.  All two-qubit gates share the hub, so the circuit is fully
    sequential and its ideal latency grows linearly with ``num_qubits``.
    """
    if num_qubits < 2:
        raise CircuitError("a GHZ circuit needs at least 2 qubits")
    circuit = QuantumCircuit(f"ghz_{num_qubits}")
    qubits = circuit.add_qubits(num_qubits, initial_value=0)
    circuit.h(qubits[0])
    for target in qubits[1:]:
        circuit.cx(qubits[0], target)
    return circuit


def ripple_chain_circuit(num_qubits: int, *, rounds: int = 1) -> QuantumCircuit:
    """Build a nearest-neighbour CNOT chain repeated ``rounds`` times.

    Qubit ``i`` controls qubit ``i+1``; every gate depends on the previous
    one, so the circuit has no instruction-level parallelism at all.  Useful
    as a worst-case for schedulers and a best-case for placement locality.
    """
    if num_qubits < 2:
        raise CircuitError("a ripple chain needs at least 2 qubits")
    if rounds < 1:
        raise CircuitError("rounds must be positive")
    circuit = QuantumCircuit(f"ripple_{num_qubits}x{rounds}")
    qubits = circuit.add_qubits(num_qubits, initial_value=0)
    circuit.h(qubits[0])
    for _ in range(rounds):
        for i in range(num_qubits - 1):
            circuit.cx(qubits[i], qubits[i + 1])
    return circuit


def qft_like_circuit(num_qubits: int) -> QuantumCircuit:
    """Build a QFT-style interaction pattern on ``num_qubits`` qubits.

    For every qubit ``i``: a Hadamard followed by controlled-Z gates from all
    later qubits ``j > i``.  The two-qubit interaction graph is complete,
    which maximises routing pressure and congestion on the fabric.  Gate
    semantics (controlled phase angles) are irrelevant to the mapper, so
    plain ``C-Z`` gates are used.
    """
    if num_qubits < 2:
        raise CircuitError("a QFT-like circuit needs at least 2 qubits")
    circuit = QuantumCircuit(f"qft_like_{num_qubits}")
    qubits = circuit.add_qubits(num_qubits)
    for i in range(num_qubits):
        circuit.h(qubits[i])
        for j in range(i + 1, num_qubits):
            circuit.cz(qubits[j], qubits[i])
    return circuit
