"""Random circuit generation for stress tests and property-based testing.

The generator is deterministic for a given seed, which keeps test failures
reproducible.
"""

from __future__ import annotations

import random

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError

#: Single-qubit gates eligible for random selection.
_ONE_QUBIT_GATES = ("H", "X", "Y", "Z", "S", "T")
#: Two-qubit gates eligible for random selection.
_TWO_QUBIT_GATES = ("C-X", "C-Y", "C-Z")


def random_circuit(
    num_qubits: int,
    num_gates: int,
    *,
    two_qubit_fraction: float = 0.6,
    seed: int = 0,
    name: str | None = None,
) -> QuantumCircuit:
    """Generate a random circuit with a controlled two-qubit gate fraction.

    Args:
        num_qubits: Number of qubits to declare (all initialised to 0).
        num_gates: Number of gate instructions to emit.
        two_qubit_fraction: Probability that an instruction is a two-qubit
            gate (requires ``num_qubits >= 2``).
        seed: Seed of the private random generator.
        name: Optional circuit name.

    Returns:
        A :class:`QuantumCircuit` with exactly ``num_gates`` instructions.

    Raises:
        CircuitError: On invalid parameters.
    """
    if num_qubits < 1:
        raise CircuitError("num_qubits must be positive")
    if num_gates < 0:
        raise CircuitError("num_gates must be non-negative")
    if not 0.0 <= two_qubit_fraction <= 1.0:
        raise CircuitError("two_qubit_fraction must be within [0, 1]")
    if two_qubit_fraction > 0 and num_qubits < 2:
        raise CircuitError("two-qubit gates need at least 2 qubits")

    rng = random.Random(seed)
    circuit = QuantumCircuit(name or f"random_{num_qubits}q_{num_gates}g_s{seed}")
    qubits = circuit.add_qubits(num_qubits, initial_value=0)
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < two_qubit_fraction:
            control, target = rng.sample(qubits, 2)
            circuit.append(rng.choice(_TWO_QUBIT_GATES), control, target)
        else:
            circuit.append(rng.choice(_ONE_QUBIT_GATES), rng.choice(qubits))
    return circuit
