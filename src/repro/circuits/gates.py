"""Gate registry: names, arities and inverses.

The mapper does not simulate gate semantics; it only needs to know, for each
gate mnemonic, how many qubit operands it takes (to pick the right technology
delay and trap occupancy) and what its inverse gate is (to build the
uncompute dependency graph, UIDG, used by the MVFB placer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate mnemonic.

    Attributes:
        name: Canonical mnemonic (upper case, e.g. ``C-X``).
        arity: Number of qubit operands (1 or 2).
        inverse_name: Mnemonic of the inverse gate.  Self-inverse gates point
            at themselves.
        is_measurement: True for the measurement pseudo-gate.
        description: Human-readable description used in documentation and
            trace rendering.
    """

    name: str
    arity: int
    inverse_name: str
    is_measurement: bool = False
    description: str = ""

    @property
    def is_self_inverse(self) -> bool:
        """Whether applying the gate twice is the identity."""
        return self.inverse_name == self.name


def _spec(
    name: str,
    arity: int,
    inverse: str | None = None,
    *,
    measurement: bool = False,
    description: str = "",
) -> GateSpec:
    return GateSpec(name, arity, inverse or name, measurement, description)


#: Canonical gate registry.  Controlled gates list the control first.
GATE_REGISTRY: dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        _spec("H", 1, description="Hadamard"),
        _spec("X", 1, description="Pauli-X"),
        _spec("Y", 1, description="Pauli-Y"),
        _spec("Z", 1, description="Pauli-Z"),
        _spec("S", 1, "SDAG", description="Phase gate sqrt(Z)"),
        _spec("SDAG", 1, "S", description="Inverse phase gate"),
        _spec("T", 1, "TDAG", description="pi/8 gate"),
        _spec("TDAG", 1, "T", description="Inverse pi/8 gate"),
        _spec("PREPARE", 1, description="State preparation to |0>"),
        _spec("C-X", 2, description="Controlled-X (CNOT)"),
        _spec("C-Y", 2, description="Controlled-Y"),
        _spec("C-Z", 2, description="Controlled-Z"),
        _spec("SWAP", 2, description="Swap two qubits"),
        _spec("MEASURE", 1, measurement=True, description="Computational-basis measurement"),
    ]
}

#: Accepted aliases, normalised to canonical mnemonics by :func:`get_gate`.
GATE_ALIASES: dict[str, str] = {
    "CNOT": "C-X",
    "CX": "C-X",
    "CY": "C-Y",
    "CZ": "C-Z",
    "S-DAG": "SDAG",
    "SD": "SDAG",
    "T-DAG": "TDAG",
    "TD": "TDAG",
    "MEAS": "MEASURE",
}


def canonical_name(name: str) -> str:
    """Return the canonical mnemonic for ``name`` (case-insensitive)."""
    upper = name.upper()
    return GATE_ALIASES.get(upper, upper)


def is_known_gate(name: str) -> bool:
    """Whether ``name`` (or one of its aliases) is in the registry."""
    return canonical_name(name) in GATE_REGISTRY


def get_gate(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for ``name``.

    Raises:
        CircuitError: If the mnemonic is unknown.
    """
    spec = GATE_REGISTRY.get(canonical_name(name))
    if spec is None:
        raise CircuitError(f"unknown gate mnemonic: {name!r}")
    return spec


def inverse_gate(name: str) -> GateSpec:
    """Return the :class:`GateSpec` of the inverse of gate ``name``."""
    return get_gate(get_gate(name).inverse_name)
