"""The control trace: the ordered log of micro-commands of a mapping run."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.sim.microcode import CommandKind, MicroCommand


class ControlTrace:
    """An append-only, time-ordered collection of micro-commands."""

    def __init__(self, commands: Iterable[MicroCommand] = ()) -> None:
        self._commands: list[MicroCommand] = list(commands)
        self._sorted: tuple[MicroCommand, ...] | None = None

    def add(self, command: MicroCommand) -> None:
        """Append one command."""
        self._commands.append(command)
        self._sorted = None

    def extend(self, commands: Iterable[MicroCommand]) -> None:
        """Append several commands."""
        self._commands.extend(commands)
        self._sorted = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def commands(self) -> tuple[MicroCommand, ...]:
        """All commands sorted by start time (ties by insertion order).

        The sorted view is cached between mutations: reporting code walks it
        repeatedly (per-qubit and per-instruction projections), and Python's
        sort is near-linear on the already-sorted cached input anyway.
        """
        if self._sorted is None:
            self._sorted = tuple(sorted(self._commands, key=lambda c: c.start))
        return self._sorted

    def __iter__(self) -> Iterator[MicroCommand]:
        return iter(self.commands)

    def __len__(self) -> int:
        return len(self._commands)

    @property
    def makespan(self) -> float:
        """Completion time of the last command (0 for an empty trace)."""
        return max((command.end for command in self._commands), default=0.0)

    def count_by_kind(self) -> dict[CommandKind, int]:
        """Number of commands of each kind."""
        counts = Counter(command.kind for command in self._commands)
        return {kind: counts.get(kind, 0) for kind in CommandKind}

    def commands_for_qubit(self, qubit: str) -> list[MicroCommand]:
        """All commands involving ``qubit``, in time order."""
        return [command for command in self.commands if qubit in command.qubits]

    def commands_for_instruction(self, instruction_index: int) -> list[MicroCommand]:
        """All commands belonging to one circuit instruction, in time order."""
        return [
            command
            for command in self.commands
            if command.instruction_index == instruction_index
        ]

    def busy_time(self, kind: CommandKind) -> float:
        """Total duration of all commands of ``kind`` (summed over qubits)."""
        return sum(command.duration for command in self._commands if command.kind is kind)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self, *, limit: int | None = None) -> str:
        """Human-readable rendering, optionally truncated to ``limit`` lines."""
        lines = [str(command) for command in self.commands]
        if limit is not None and len(lines) > limit:
            omitted = len(lines) - limit
            lines = lines[:limit] + [f"... ({omitted} more commands)"]
        return "\n".join(lines)

    def reversed_trace(self) -> "ControlTrace":
        """The trace re-ordered back-to-front on the time axis.

        Used when the best MVFB solution comes from a backward (uncompute)
        pass: the paper reports the *reverse* of the backward control trace as
        the solution trace.  Times are mirrored around the makespan so the
        result is again a forward-running trace.
        """
        makespan = self.makespan
        mirrored = [
            MicroCommand(
                command.kind,
                makespan - command.end,
                command.duration,
                command.qubits,
                command.resource,
                command.instruction_index,
                command.detail,
            )
            for command in self._commands
        ]
        return ControlTrace(mirrored)
