"""Event-driven simulation of a circuit executing on an ion-trap fabric.

The simulator is where scheduling, placement and routing meet: starting from
an initial placement of qubits in traps, it issues ready instructions in
priority (or forced-schedule) order, asks the router for operand journeys,
reserves channel capacity, and advances time through two kinds of events —
*an instruction finished executing* and *a qubit exited a channel* — exactly
as described in Section IV.B of the paper.

* :mod:`repro.sim.events` — event types and the event queue.
* :mod:`repro.sim.microcode` — the micro-commands (moves, turns, gates) the
  quantum system controller would issue.
* :mod:`repro.sim.trace` — the control trace: an ordered log of micro-commands.
* :mod:`repro.sim.engine` — the :class:`FabricSimulator` itself.
"""

from repro.sim.events import ChannelExited, EventQueue, GateFinished
from repro.sim.microcode import CommandKind, MicroCommand
from repro.sim.trace import ControlTrace
from repro.sim.engine import FabricSimulator, InstructionRecord, SimulationOutcome

__all__ = [
    "EventQueue",
    "GateFinished",
    "ChannelExited",
    "CommandKind",
    "MicroCommand",
    "ControlTrace",
    "FabricSimulator",
    "InstructionRecord",
    "SimulationOutcome",
]
