"""Event-driven simulation of a circuit executing on an ion-trap fabric.

The simulator is where scheduling, placement and routing meet: starting from
an initial placement of qubits in traps, it issues ready instructions in
priority (or forced-schedule) order, asks the router for operand journeys,
reserves channel capacity, and advances time through a timestamp-ordered
event heap.  The typed events — :class:`InstructionCompleted`,
:class:`ChannelReleased`, :class:`QubitArrived` and
:class:`BarrierLevelCleared` — carry exactly the state change they announce,
so the engine re-attempts issue only for instructions whose blockers
actually changed (see ``docs/ARCHITECTURE.md``).  The first two correspond
to the two event kinds of Section IV.B of the paper and keep their
historical aliases :class:`GateFinished` and :class:`ChannelExited`.

* :mod:`repro.sim.events` — typed events, the event heap and
  :class:`EventLoopStats`.
* :mod:`repro.sim.microcode` — the micro-commands (moves, turns, gates) the
  quantum system controller would issue.
* :mod:`repro.sim.trace` — the control trace: an ordered log of micro-commands.
* :mod:`repro.sim.engine` — the :class:`FabricSimulator` itself.
"""

from repro.sim.events import (
    BarrierLevelCleared,
    ChannelExited,
    ChannelReleased,
    EventLoopStats,
    EventQueue,
    GateFinished,
    InstructionCompleted,
    QubitArrived,
)
from repro.sim.microcode import CommandKind, MicroCommand
from repro.sim.trace import ControlTrace
from repro.sim.engine import FabricSimulator, InstructionRecord, SimulationOutcome

__all__ = [
    "EventQueue",
    "EventLoopStats",
    "InstructionCompleted",
    "ChannelReleased",
    "QubitArrived",
    "BarrierLevelCleared",
    "GateFinished",
    "ChannelExited",
    "CommandKind",
    "MicroCommand",
    "ControlTrace",
    "FabricSimulator",
    "InstructionRecord",
    "SimulationOutcome",
]
