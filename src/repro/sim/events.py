"""Simulation events, the time-ordered event queue and its counters.

Four event types drive the event core (paper Section IV.B describes the
first two; the other two are bookkeeping events of the event-driven engine):

* :class:`InstructionCompleted` — execution of an instruction finished; its
  dependent instructions may become ready.
* :class:`ChannelReleased` — a qubit left a channel; the channel's congestion
  weight drops and busy-queued instructions parked on it are retried.
* :class:`QubitArrived` — an operand reached the meeting trap; when the last
  operand of an instruction arrives, its completion is scheduled.
* :class:`BarrierLevelCleared` — every instruction of an ALAP level finished
  (barrier scheduling only); the next level becomes eligible.

``GateFinished`` and ``ChannelExited`` remain importable as aliases of the
first two for backwards compatibility.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.fabric.components import ChannelId


@dataclass(frozen=True)
class InstructionCompleted:
    """Execution of instruction ``instruction_index`` finished in ``trap_id``."""

    instruction_index: int
    trap_id: int


@dataclass(frozen=True)
class ChannelReleased:
    """Qubit ``qubit`` left channel ``channel_id``."""

    qubit: str
    channel_id: ChannelId


@dataclass(frozen=True)
class QubitArrived:
    """Operand ``qubit`` of ``instruction_index`` arrived in trap ``trap_id``."""

    qubit: str
    trap_id: int
    instruction_index: int


@dataclass(frozen=True)
class BarrierLevelCleared:
    """Every instruction of ALAP level ``level`` finished (barrier mode)."""

    level: int


#: Backwards-compatible aliases (pre-event-core names).
GateFinished = InstructionCompleted
ChannelExited = ChannelReleased

Event = InstructionCompleted | ChannelReleased | QubitArrived | BarrierLevelCleared


@dataclass
class EventLoopStats:
    """Counters of one simulation run's event loop.

    The event core's analogue of
    :class:`~repro.routing.compiled.RoutingCoreStats`: cheap integers that
    make the loop's behaviour observable in summaries, sweep CSVs and the
    benchmark harness.

    Attributes:
        events_processed: Events popped off the heap.
        peak_heap_size: Largest number of events pending at once.
        wake_hits: Parked instructions woken by a targeted wake (a released
            channel or a changed trap naming them as blocker).
        skipped_polls: Event timestamps after which the issue loop was *not*
            re-entered because no instruction's blockers changed (the event
            core's whole point; always 0 on the tick loop).
        issue_polls: Times the issue loop was entered.
    """

    events_processed: int = 0
    peak_heap_size: int = 0
    wake_hits: int = 0
    skipped_polls: int = 0
    issue_polls: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters under stable report/CSV keys."""
        return {
            "events_processed": self.events_processed,
            "event_peak_heap": self.peak_heap_size,
            "event_wake_hits": self.wake_hits,
            "event_skipped_polls": self.skipped_polls,
            "event_issue_polls": self.issue_polls,
        }


class EventQueue:
    """A time-ordered queue of simulation events.

    Events at equal times are delivered in insertion order, which keeps the
    simulation deterministic.  The queue tracks its own high-water mark
    (:attr:`peak_size`) for :class:`EventLoopStats`.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = 0
        self._peak = 0

    def push(self, time: float, event: Event) -> None:
        """Schedule ``event`` at ``time``.

        Raises:
            SimulationError: If ``time`` is negative.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        heapq.heappush(self._heap, (time, self._counter, event))
        self._counter += 1
        if len(self._heap) > self._peak:
            self._peak = len(self._heap)

    def pop(self) -> tuple[float, Event]:
        """Remove and return the earliest event as ``(time, event)``.

        Raises:
            SimulationError: If the queue is empty.
        """
        if not self._heap:
            raise SimulationError("event queue is empty")
        time, _, event = heapq.heappop(self._heap)
        return time, event

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def peak_size(self) -> int:
        """Largest number of events that were ever pending at once."""
        return self._peak

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
