"""Simulation events and the time-ordered event queue.

Two event types drive the simulation (paper Section IV.B):

* :class:`GateFinished` — execution of an instruction finished; its dependent
  instructions may become ready.
* :class:`ChannelExited` — a qubit left a channel; the channel's congestion
  weight drops and busy-queued instructions are retried.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.fabric.components import ChannelId


@dataclass(frozen=True)
class GateFinished:
    """Execution of instruction ``instruction_index`` finished in ``trap_id``."""

    instruction_index: int
    trap_id: int


@dataclass(frozen=True)
class ChannelExited:
    """Qubit ``qubit`` left channel ``channel_id``."""

    qubit: str
    channel_id: ChannelId


Event = GateFinished | ChannelExited


class EventQueue:
    """A time-ordered queue of simulation events.

    Events at equal times are delivered in insertion order, which keeps the
    simulation deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = 0

    def push(self, time: float, event: Event) -> None:
        """Schedule ``event`` at ``time``.

        Raises:
            SimulationError: If ``time`` is negative.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        heapq.heappush(self._heap, (time, self._counter, event))
        self._counter += 1

    def pop(self) -> tuple[float, Event]:
        """Remove and return the earliest event as ``(time, event)``.

        Raises:
            SimulationError: If the queue is empty.
        """
        if not self._heap:
            raise SimulationError("event queue is empty")
        time, _, event = heapq.heappop(self._heap)
        return time, event

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
