"""The event-driven fabric simulator.

:class:`FabricSimulator` executes a circuit on a fabric starting from an
initial placement.  It interleaves scheduling and routing exactly as the
paper describes (Sections III and IV.B):

1. Ready instructions (all QIDG predecessors completed) are considered in
   the order owned by the run's :class:`~repro.scheduling.policies.
   SchedulingPolicy` (a :class:`_PolicyOrderSelector`) — or gated
   level-by-level for barrier scheduling, or in a *forced* total order for
   MVFB backward passes (each a :class:`_CandidateSelector` strategy).
2. For each candidate the router plans the operand journeys under the current
   congestion; if no finite route exists the instruction is parked in the
   busy queue on the exact resources that blocked it (its waiting time is
   the ``T_congestion`` of Eq. 1).
3. Issued instructions reserve every channel on their routes and push typed
   events onto a timestamp-ordered heap: ``QubitArrived`` when an operand
   reaches the meeting trap, ``ChannelReleased`` when it exits a channel,
   ``InstructionCompleted`` when the gate finishes (and, under barrier
   scheduling, ``BarrierLevelCleared`` when an ALAP level drains).

The **event core** (the default) re-enters the issue loop only when an
event's handler reports that some instruction's blockers actually changed:
releases wake the instructions parked on the released channel, issues wake
the instructions parked on a vacated or newly reserved trap, and completions
wake nothing at all — they can be shown never to unblock a parked
instruction (the meeting trap stays occupied either way, and an in-flight
instruction never shares qubits with a parked one).  Event timestamps whose
handlers woke nothing skip the issue poll entirely.  The **tick loop**
(``event_core=False``) is the pre-event-core behaviour — re-poll the
candidate pool after every event timestamp — kept selectable for
differential tests and benchmarks; both cores produce byte-identical
schedules, latencies and congestion counters.

The outcome carries the total latency, the realised schedule, the final
placement (needed by the MVFB placer), per-instruction timing records, the
full micro-command trace and the event loop's own counters
(:class:`~repro.sim.events.EventLoopStats`).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.errors import SimulationError
from repro.fabric.components import TrapId
from repro.fabric.fabric import Fabric
from repro.placement.base import Placement
from repro.qidg.analysis import alap_levels
from repro.qidg.graph import QIDG, build_qidg
from repro.routing.compiled import RoutingCoreStats
from repro.routing.congestion import CongestionTracker
from repro.routing.path import RoutePlan
from repro.routing.router import (
    ANY_CONGESTION_CHANGE,
    InstructionRoute,
    QSPR_POLICY,
    Router,
    RoutingPolicy,
    candidate_trap_key,
    channel_key,
    trap_key,
)
from repro.scheduling.busy_queue import BusyQueue
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.priority import PriorityPolicy
from repro.scheduling.ready import DependencyTracker
from repro.sim.events import (
    BarrierLevelCleared,
    ChannelReleased,
    Event,
    EventLoopStats,
    EventQueue,
    InstructionCompleted,
    QubitArrived,
)
from repro.sim.microcode import CommandKind, MicroCommand
from repro.sim.trace import ControlTrace
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


@dataclass
class InstructionRecord:
    """Timing record of one instruction (the terms of Eq. 1).

    Attributes:
        index: Instruction index.
        ready_time: Time all dependencies had completed.
        issue_time: Time the instruction was issued (routing started).
        gate_start: Time the gate operation started (operands arrived).
        finish_time: Time the gate operation completed.
        target_trap: Trap the gate executed in.
        routing_delay: ``T_routing`` — slowest operand's travel time.
        congestion_delay: ``T_congestion`` — time spent waiting for routing
            resources after becoming ready.
        gate_delay: ``T_gate``.
        moves: Total operand moves.
        turns: Total operand turns.
    """

    index: int
    ready_time: float = 0.0
    issue_time: float = 0.0
    gate_start: float = 0.0
    finish_time: float = 0.0
    target_trap: TrapId = -1
    routing_delay: float = 0.0
    congestion_delay: float = 0.0
    gate_delay: float = 0.0
    moves: int = 0
    turns: int = 0

    @property
    def total_delay(self) -> float:
        """Instruction delay per Eq. 1: gate + routing + congestion."""
        return self.gate_delay + self.routing_delay + self.congestion_delay


@dataclass
class SimulationOutcome:
    """Everything a mapping pass produces.

    Attributes:
        latency: Completion time of the last instruction (the execution
            latency the paper reports).
        schedule: Instruction indices in issue order (the total order ``S``).
        initial_placement: The placement the pass started from.
        final_placement: Where each qubit rests after the last instruction
            (the ``P'`` fed into the next MVFB pass).
        records: Per-instruction timing records, keyed by instruction index.
        trace: The micro-command control trace.
        total_moves: Total qubit moves over the whole run.
        total_turns: Total qubit turns over the whole run.
        total_congestion_delay: Sum of all instructions' busy-queue waits.
        busy_queue_entries: Number of times any instruction was parked.
        cpu_seconds: Wall-clock time spent simulating.
        routing_seconds: Wall-clock time spent inside the router planning
            instruction routes (a subset of ``cpu_seconds``).
        routing_stats: Routing-core counters accumulated by this run (route
            cache hits/misses, Dijkstra calls, heap pops, edge relaxations).
        event_stats: Event-loop counters of this run (events processed, peak
            heap size, wake hits, skipped issue polls).
    """

    latency: float
    schedule: list[int]
    initial_placement: Placement
    final_placement: Placement
    records: dict[int, InstructionRecord]
    trace: ControlTrace
    total_moves: int = 0
    total_turns: int = 0
    total_congestion_delay: float = 0.0
    busy_queue_entries: int = 0
    cpu_seconds: float = 0.0
    routing_seconds: float = 0.0
    routing_stats: RoutingCoreStats = field(default_factory=RoutingCoreStats)
    event_stats: EventLoopStats = field(default_factory=EventLoopStats)

    @property
    def total_routing_delay(self) -> float:
        """Sum of all instructions' routing delays."""
        return sum(record.routing_delay for record in self.records.values())


class FabricSimulator:
    """Simulates one mapping pass of a circuit on a fabric."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        fabric: Fabric,
        technology: TechnologyParams = PAPER_TECHNOLOGY,
        *,
        routing_policy: RoutingPolicy = QSPR_POLICY,
        priority_policy: "PriorityPolicy | SchedulingPolicy | str" = PriorityPolicy.QSPR,
        scheduler: "SchedulingPolicy | PriorityPolicy | str | None" = None,
        forced_order: list[int] | None = None,
        qidg: QIDG | None = None,
        barrier_scheduling: bool = False,
        compiled_routing: bool = True,
        event_core: bool = True,
        busy_wake_sets: bool = True,
        routing_v2: bool = True,
        shared_route_cache: bool = False,
    ) -> None:
        """Create a simulator.

        Args:
            circuit: The circuit to execute.
            fabric: The fabric to execute it on.
            technology: Delay and capacity parameters.
            routing_policy: Router feature switches (QSPR vs legacy).
            priority_policy: Scheduling policy selector — a
                :class:`~repro.scheduling.policies.SchedulingPolicy`, a
                registry name from :data:`repro.pipeline.SCHEDULERS` or a
                legacy :class:`PriorityPolicy` member.  Ignored when a
                ``forced_order`` is given.
            scheduler: Alias of ``priority_policy`` under its canonical name;
                takes precedence when both are passed.
            forced_order: Optional total issue order (a permutation of the
                instruction indices).  Used by MVFB backward passes, which
                replay the reversed schedule of the preceding forward pass.
            qidg: Optionally a pre-built QIDG of ``circuit`` (avoids
                rebuilding it for every pass of an iterative placer).
            barrier_scheduling: Model prior tools (QUALE) that compute a
                level-by-level (ALAP) schedule *before* mapping: an
                instruction only becomes eligible once every instruction of
                earlier ALAP levels has finished, so routing never overlaps
                across levels.  QSPR interleaves scheduling with routing and
                leaves this off.
            compiled_routing: Run the router on the compiled routing core
                (CSR Dijkstra kernel plus the epoch-validated route cache).
                ``False`` reproduces the pre-refactor object-based core —
                results are identical either way; only speed differs.  Kept
                selectable for differential tests and benchmarks.
            event_core: Drive the run off the typed event heap and only
                re-enter the issue loop when an event changed some
                instruction's blockers (the default).  ``False`` selects the
                pre-event-core tick loop, which re-polls the candidate pool
                after every event timestamp.  Schedules, latencies and
                congestion counters are byte-identical either way; only the
                number of (futile) router calls — and therefore wall time —
                differs.  Kept selectable for differential tests and
                benchmarks.
            busy_wake_sets: Retry a parked instruction only when one of the
                resources that blocked its last routing attempt changes,
                instead of re-planning the whole busy queue on every event.
                On by default since the event core made it the default path;
                the flag is **deprecated** and kept only so benchmarks and
                differential tests can reproduce the eager-retry behaviour.
                Latencies, schedules and movement counts are unchanged; only
                the number of futile router calls drops.
            routing_v2: Run the router's v2 fast path — region-scoped route
                -cache invalidation, landmark (ALT) heap-pop pruning,
                warm-started re-computation and batched candidate prefills
                (see :class:`~repro.routing.router.Router`).  Plans, routes
                and schedules are byte-identical either way (held by the
                differential suites); only the cache/heap counters and wall
                time differ.  Requires ``compiled_routing``; kept
                selectable for differential tests and benchmarks.
            shared_route_cache: Let the router consult the cross-run
                route store memoised on the fabric (see
                :mod:`repro.routing.shared_cache`): plans whose region
                footprint was idle are shared by every simulator on the
                same fabric, technology and routing policy.  Results are
                identical; only the cache-hit counters change.  Off by
                default to keep default-scenario reports byte-stable —
                service workers, which run many jobs on one memoised
                fabric, enable it.
        """
        self.circuit = circuit
        self.fabric = fabric
        self.technology = technology
        self.routing_policy = routing_policy
        self.priority_policy = priority_policy if scheduler is None else scheduler
        self.scheduler = _resolve_policy(self.priority_policy)
        self.qidg = qidg if qidg is not None else build_qidg(circuit)
        if forced_order is not None and not self.qidg.is_valid_order(forced_order):
            raise SimulationError("forced_order is not a topological order of the QIDG")
        self.forced_order = list(forced_order) if forced_order is not None else None
        self.barrier_scheduling = barrier_scheduling
        self.event_core = event_core
        self.busy_wake_sets = busy_wake_sets
        self.levels: dict[int, int] | None = (
            alap_levels(self.qidg) if barrier_scheduling else None
        )
        shared_store = None
        if shared_route_cache and compiled_routing:
            from repro.routing.shared_cache import SharedRouteStore

            shared_store = SharedRouteStore.shared(
                fabric, technology=technology, policy=routing_policy
            )
        self.router = Router(
            fabric,
            technology,
            routing_policy,
            use_compiled=compiled_routing,
            use_route_cache=compiled_routing,
            routing_v2=routing_v2,
            shared_store=shared_store,
        )
        self.priorities = self.scheduler.priorities(self.qidg, technology)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, initial_placement: Placement) -> SimulationOutcome:
        """Execute the circuit starting from ``initial_placement``."""
        started = _time.perf_counter()
        initial_placement.validate(self.circuit, self.fabric)

        state = _RunState(self, initial_placement)
        stats = state.stats
        state.attempt_issue(0.0)
        stats.issue_polls += 1
        while state.events:
            event_time, event = state.events.pop()
            wake = state.process_event(event_time, event)
            stats.events_processed += 1
            # Drain all events that share this timestamp before re-issuing, so
            # simultaneous channel exits are all visible to the router.
            while state.events and state.events.peek_time() == event_time:
                _, simultaneous = state.events.pop()
                if state.process_event(event_time, simultaneous):
                    wake = True
                stats.events_processed += 1
            if state.gated and not wake:
                # No handler changed any instruction's blockers: every retry
                # the issue loop could make is known to fail, so skip it.
                stats.skipped_polls += 1
                continue
            state.attempt_issue(event_time)
            stats.issue_polls += 1

        if not state.deps.all_completed:
            outstanding = state.deps.outstanding
            raise SimulationError(
                f"simulation stalled with {len(outstanding)} unfinished instructions: "
                f"{outstanding[:10]}"
            )

        cpu_seconds = _time.perf_counter() - started
        return state.build_outcome(cpu_seconds)


def _resolve_policy(
    selector: "SchedulingPolicy | PriorityPolicy | str",
) -> SchedulingPolicy:
    """The :class:`SchedulingPolicy` behind any of the selector spellings."""
    # Imported lazily: repro.pipeline imports this module (through the
    # pipeline context), so a module-level import would be circular.
    from repro.pipeline.schedulers import resolve_scheduler

    return resolve_scheduler(selector, error=SimulationError)


# ----------------------------------------------------------------------
# Candidate selection strategies
# ----------------------------------------------------------------------
class _CandidateSelector:
    """Which pool instructions the issue loop may try next, in which order.

    One strategy instance per run; the three concrete selectors split what
    used to be a single branching candidate computation inside the issue
    loop.  All mutations of pool membership flow through the notification
    hooks, so each strategy maintains exactly the view it needs.
    """

    def __init__(self, state: "_RunState") -> None:
        self.state = state

    def candidates(self) -> list[int]:
        """Issueable instructions, most preferred first."""
        raise NotImplementedError

    def on_pool_changed(self) -> None:
        """The candidate pool gained or lost a member."""

    def on_issued(self, index: int) -> None:
        """``index`` was issued."""

    def on_completed(self, index: int) -> int | None:
        """``index`` finished executing.

        Returns the ALAP level this completion cleared (barrier scheduling
        only), or ``None``.
        """
        return None

    @property
    def stop_on_blocked_head(self) -> bool:
        """Whether an unroutable head candidate blocks the whole issue loop."""
        return False


class _PolicyOrderSelector(_CandidateSelector):
    """Standard mode: the scheduling policy owns the candidate ordering.

    The pool (ready ∪ busy) and its policy-ordered view are maintained
    incrementally: parking keeps pool membership, issuing removes, completion
    adds the newly ready.  The ordered view is only rebuilt after a
    membership change, instead of re-deriving set and order from scratch on
    every issue attempt.
    """

    def __init__(self, state: "_RunState") -> None:
        super().__init__(state)
        self._dirty = True
        self._ordered: list[int] = []

    def candidates(self) -> list[int]:
        if self._dirty:
            self._ordered = self.state.sim.scheduler.order(
                self.state.pool, self.state.sim.priorities
            )
            self._dirty = False
        return self._ordered

    def on_pool_changed(self) -> None:
        self._dirty = True


class _BarrierLevelSelector(_CandidateSelector):
    """Barrier mode (QUALE): only the lowest unfinished ALAP level may issue.

    The open level is tracked incrementally: instructions only ever issue
    from the current level, so completions drain the levels strictly in
    order and the cursor simply advances when the current level's last
    instruction finishes (the engine then emits a
    :class:`~repro.sim.events.BarrierLevelCleared` event on the event core).
    """

    def __init__(self, state: "_RunState") -> None:
        super().__init__(state)
        assert state.sim.levels is not None
        self.levels = state.sim.levels
        self.level_remaining: dict[int, int] = {}
        for level in self.levels.values():
            self.level_remaining[level] = self.level_remaining.get(level, 0) + 1
        self._level_order = sorted(self.level_remaining)
        self._cursor = 0
        self._dirty = True
        self._ordered: list[int] = []

    @property
    def current_level(self) -> int | None:
        """The lowest ALAP level with unfinished instructions."""
        if self._cursor < len(self._level_order):
            return self._level_order[self._cursor]
        return None

    def candidates(self) -> list[int]:
        if self._dirty:
            level = self.current_level
            pool = self.state.pool
            if level is not None:
                pool = {index for index in pool if self.levels[index] == level}
            self._ordered = self.state.sim.scheduler.order(
                pool, self.state.sim.priorities
            )
            self._dirty = False
        return self._ordered

    def on_pool_changed(self) -> None:
        self._dirty = True

    def on_completed(self, index: int) -> int | None:
        level = self.levels[index]
        self.level_remaining[level] -= 1
        if level != self.current_level or self.level_remaining[level] > 0:
            return None
        while (
            self._cursor < len(self._level_order)
            and self.level_remaining[self._level_order[self._cursor]] == 0
        ):
            self._cursor += 1
        self._dirty = True
        return level


class _ForcedOrderSelector(_CandidateSelector):
    """Forced mode (MVFB backward passes): replay a fixed total order."""

    def __init__(self, state: "_RunState") -> None:
        super().__init__(state)
        assert state.sim.forced_order is not None
        self.order = state.sim.forced_order
        self.position = 0

    def candidates(self) -> list[int]:
        if self.position >= len(self.order):
            return []
        head = self.order[self.position]
        return [head] if head in self.state.pool else []

    def on_issued(self, index: int) -> None:
        self.position += 1

    @property
    def stop_on_blocked_head(self) -> bool:
        # A forced schedule cannot skip its head instruction.
        return True


class _RunState:
    """Mutable state of one simulation run (internal)."""

    def __init__(self, sim: FabricSimulator, initial_placement: Placement) -> None:
        self.sim = sim
        self.initial_placement = initial_placement
        self.positions: dict[str, TrapId] = initial_placement.as_dict()
        self.resting: dict[TrapId, set[str]] = {}
        for qubit, trap in self.positions.items():
            self.resting.setdefault(trap, set()).add(qubit)
        self.in_flight: set[str] = set()
        self.reserved_traps: set[TrapId] = set()
        self.congestion = CongestionTracker(
            sim.fabric, sim.routing_policy.channel_capacity
        )
        self.deps = DependencyTracker(sim.qidg)
        self.busy = BusyQueue()
        self.events = EventQueue()
        self.trace = ControlTrace()
        self.schedule: list[int] = []
        self.records: dict[int, InstructionRecord] = {}
        self.ready: set[int] = set(self.deps.initially_ready())
        for index in self.ready:
            self.records[index] = InstructionRecord(index=index, ready_time=0.0)
        self.routes: dict[int, InstructionRoute] = {}
        self.pool: set[int] = set(self.ready)
        self.stats = EventLoopStats()
        self.event_core = sim.event_core
        # Operands of issued-but-unfinished instructions still under way
        # (event core only): instruction index → outstanding QubitArrived
        # events.  The last arrival schedules the completion.
        self.pending_arrivals: dict[int, int] = {}
        if sim.forced_order is not None:
            self.selector: _CandidateSelector = _ForcedOrderSelector(self)
        elif sim.levels is not None:
            self.selector = _BarrierLevelSelector(self)
        else:
            self.selector = _PolicyOrderSelector(self)
        # Busy-queue wake-sets only apply to the standard selector: forced
        # and barrier runs retry unconditionally (their gating is cheap and
        # their issue patterns make skipped retries not worth the risk).
        self.use_wake_sets = sim.busy_wake_sets and isinstance(
            self.selector, _PolicyOrderSelector
        )
        # Skip issue polls after wake-less event timestamps only when the
        # wake bookkeeping is precise: the event core records per-resource
        # blockers, so "nothing woke" proves every possible retry fails.
        self.gated = self.event_core and self.use_wake_sets
        self.routing_seconds = 0.0
        self._stats_baseline = sim.router.stats.snapshot()

    def _occupied_traps_for(self, instruction: Instruction) -> set[TrapId]:
        """Traps the router must not pick as the meeting trap."""
        operand_names = set(instruction.qubit_names)
        occupied: set[TrapId] = set(self.reserved_traps)
        for trap, qubits in self.resting.items():
            if qubits - operand_names:
                occupied.add(trap)
        return occupied

    def attempt_issue(self, now: float) -> None:
        """Issue as many eligible instructions as the fabric state allows."""
        while True:
            issued_any = False
            for index in self.selector.candidates():
                if (
                    self.use_wake_sets
                    and index not in self.ready
                    and not self.busy.needs_retry(index)
                ):
                    # Parked with every recorded blocker still standing:
                    # planning is pure, so the retry would fail exactly as it
                    # did last time.  Skip the router call.
                    continue
                instruction = self.sim.qidg.instruction(index)
                # With wake-sets on, ask the router *why* planning failed:
                # the returned keys (full channels, occupancy-relevant traps,
                # the congestion-change sentinel) are this instruction's
                # wake-set.  Both cores share the precise keys — coarser
                # blockers (full channels only) miss route-choice-dependent
                # failures, where releasing a channel the failure never
                # touched still flips the outcome by changing which source
                # route the planner prefers.
                blockers: set | None = set() if self.use_wake_sets else None
                plan_started = _time.perf_counter()
                route = self.sim.router.plan_instruction(
                    instruction,
                    self.positions,
                    self.congestion,
                    occupied_traps=self._occupied_traps_for(instruction),
                    blockers=blockers,
                )
                self.routing_seconds += _time.perf_counter() - plan_started
                if route is None:
                    if index in self.ready:
                        self.ready.discard(index)
                        self.busy.park(index, now)
                    if blockers is not None:
                        self.busy.block_on(index, blockers)
                    if self.selector.stop_on_blocked_head:
                        return
                    continue
                self._issue(instruction, route, now)
                issued_any = True
                break
            if not issued_any:
                return

    def _issue(self, instruction: Instruction, route: InstructionRoute, now: float) -> None:
        index = instruction.index
        self.ready.discard(index)
        if index in self.busy:
            self.busy.remove(index)
        self.pool.discard(index)
        self.selector.on_pool_changed()
        self.selector.on_issued(index)
        self.deps.mark_issued(index)
        self.schedule.append(index)

        record = self.records.setdefault(index, InstructionRecord(index=index, ready_time=now))
        record.issue_time = now
        record.congestion_delay = max(0.0, now - record.ready_time)
        record.target_trap = route.target_trap
        record.routing_delay = route.routing_delay
        record.gate_delay = self.sim.technology.gate_delay(
            instruction.arity, is_measurement=instruction.is_measurement
        )
        record.moves = route.total_moves
        record.turns = route.total_turns
        record.gate_start = now + route.routing_delay
        record.finish_time = record.gate_start + record.gate_delay
        self.routes[index] = route

        # Reserve routing resources and the meeting trap.
        self.congestion.reserve_all(list(route.channels))
        self.reserved_traps.add(route.target_trap)

        # Operands leave their traps and become in-flight.
        offsets = route.plan_start_offsets()
        channel_exits: dict = {}
        origin_traps: set[TrapId] = set()
        for plan, offset in zip(route.plans, offsets):
            qubit = plan.qubit
            origin = self.positions[qubit]
            origin_traps.add(origin)
            residents = self.resting.get(origin)
            if residents is not None:
                residents.discard(qubit)
                if not residents:
                    del self.resting[origin]
            self.in_flight.add(qubit)
            for channel_id, exit_time in plan.channel_exit_times(now + offset):
                if route.serial:
                    # Shared channels are reserved once; release them when the
                    # last operand leaves.
                    key = channel_id
                    previous = channel_exits.get(key)
                    if previous is None or exit_time > previous[1]:
                        channel_exits[key] = (qubit, exit_time)
                else:
                    self.events.push(exit_time, ChannelReleased(qubit, channel_id))
            if self.event_core:
                self.events.push(
                    now + offset + plan.duration,
                    QubitArrived(qubit, route.target_trap, index),
                )
            self._emit_plan_commands(plan, now + offset, index)
        for channel_id, (qubit, exit_time) in channel_exits.items():
            self.events.push(exit_time, ChannelReleased(qubit, channel_id))

        gate_qubits = tuple(instruction.qubit_names)
        self.trace.add(
            MicroCommand(
                CommandKind.GATE,
                record.gate_start,
                record.gate_delay,
                gate_qubits,
                f"trap {route.target_trap}",
                index,
                instruction.gate.name,
            )
        )
        if self.event_core:
            # The last QubitArrived event schedules the completion.
            self.pending_arrivals[index] = len(route.plans)
        else:
            self.events.push(
                record.finish_time, InstructionCompleted(index, route.target_trap)
            )
        if self.use_wake_sets:
            # Issuing changes exactly two kinds of blocker state: the
            # operands' origin traps lost a qubit (they may now be legal
            # meeting traps for an instruction parked on their occupancy)
            # and the meeting trap became reserved (it shifts the candidate
            # horizon of anyone who tried it while it was free).  The
            # reservations also shift congestion weights, which
            # route-choice-dependent failures are parked on.
            woken = 0
            for trap in origin_traps:
                woken += len(self.busy.wake(trap_key(trap)))
            woken += len(self.busy.wake(candidate_trap_key(route.target_trap)))
            woken += len(self.busy.wake(ANY_CONGESTION_CHANGE))
            self.stats.wake_hits += woken

    def _emit_plan_commands(self, plan: RoutePlan, start: float, index: int) -> None:
        clock = start
        for step in plan.steps:
            if step.moves:
                self.trace.add(
                    MicroCommand(
                        CommandKind.MOVE,
                        clock,
                        step.moves * self.sim.technology.move_delay,
                        (plan.qubit,),
                        _resource_name(step),
                        index,
                        f"{step.moves} cells",
                    )
                )
            if step.turns:
                self.trace.add(
                    MicroCommand(
                        CommandKind.TURN,
                        clock + step.moves * self.sim.technology.move_delay,
                        step.turns * self.sim.technology.turn_delay,
                        (plan.qubit,),
                        _resource_name(step),
                        index,
                        f"{step.turns} turn(s)",
                    )
                )
            clock += step.duration

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def process_event(self, now: float, event: Event) -> bool:
        """Apply ``event`` to the run state.

        Returns whether the event may have changed some instruction's
        routability — the event core only re-enters the issue loop when a
        handler in the current timestamp's batch reports ``True``.
        """
        if isinstance(event, ChannelReleased):
            was_full = self.congestion.release(event.channel_id)
            if self.use_wake_sets:
                # A capacity-opening release retries the instructions parked
                # on this channel; any release also retries the instructions
                # whose failure depended on a route *choice* (the sentinel) —
                # lowering a congestion weight can change which source route
                # the planner prefers and thereby flip a failure.
                woken = self.busy.wake(channel_key(event.channel_id)) if was_full else []
                woken += self.busy.wake(ANY_CONGESTION_CHANGE)
                self.stats.wake_hits += len(woken)
            else:
                woken = []
            if not self.event_core:
                return True
            return bool(woken)
        if isinstance(event, QubitArrived):
            remaining = self.pending_arrivals[event.instruction_index] - 1
            if remaining:
                self.pending_arrivals[event.instruction_index] = remaining
            else:
                del self.pending_arrivals[event.instruction_index]
                record = self.records[event.instruction_index]
                self.events.push(
                    record.finish_time,
                    InstructionCompleted(event.instruction_index, event.trap_id),
                )
            # Arrival alone changes nothing a parked instruction is blocked
            # on: positions and trap occupancy update at completion.
            return False
        if isinstance(event, BarrierLevelCleared):
            # The selector already advanced its cursor when the last
            # instruction of the level completed; the event's job is to force
            # an issue poll for the newly opened level.
            return True
        # InstructionCompleted
        index = event.instruction_index
        route = self.routes[index]
        for plan in route.plans:
            qubit = plan.qubit
            self.in_flight.discard(qubit)
            self.positions[qubit] = route.target_trap
            self.resting.setdefault(route.target_trap, set()).add(qubit)
        self.reserved_traps.discard(route.target_trap)
        if not self.event_core:
            # Tick loop: trap occupancy and qubit positions changed — retry
            # every parked instruction.  (The event core proves completions
            # never unblock a parked instruction: the meeting trap stays
            # occupied — reserved before, holding the finished operands
            # after — and an in-flight instruction never shares a qubit with
            # a parked one, so no blocker state changes.)
            self.busy.wake_all()
        cleared_level = self.selector.on_completed(index)
        if self.event_core and cleared_level is not None:
            self.events.push(now, BarrierLevelCleared(cleared_level))
        woke = False
        for newly_ready in self.deps.mark_completed(index):
            self.ready.add(newly_ready)
            self.pool.add(newly_ready)
            self.selector.on_pool_changed()
            self.records[newly_ready] = InstructionRecord(index=newly_ready, ready_time=now)
            woke = True
        return woke

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------
    def build_outcome(self, cpu_seconds: float) -> SimulationOutcome:
        latency = max(
            (record.finish_time for record in self.records.values()), default=0.0
        )
        final_placement = Placement(
            {qubit: trap for qubit, trap in self.positions.items()}
        )
        self.stats.peak_heap_size = self.events.peak_size
        return SimulationOutcome(
            latency=latency,
            schedule=self.schedule,
            initial_placement=self.initial_placement,
            final_placement=final_placement,
            records=self.records,
            trace=self.trace,
            total_moves=sum(record.moves for record in self.records.values()),
            total_turns=sum(record.turns for record in self.records.values()),
            total_congestion_delay=sum(
                record.congestion_delay for record in self.records.values()
            ),
            busy_queue_entries=self.busy.total_entries,
            cpu_seconds=cpu_seconds,
            routing_seconds=self.routing_seconds,
            routing_stats=self.sim.router.stats.since(self._stats_baseline),
            event_stats=self.stats,
        )


def _resource_name(step) -> str:
    if step.channel_id is not None:
        return f"channel {step.channel_id}"
    return f"junction {step.junction_id}"
