"""Micro-commands issued by the quantum system controller.

The outcome of mapping is, besides the latency number, a *control trace*: the
sequence of low-level commands (qubit moves, turns and gate operations, each
with a start time and duration) that the physical machine controller would
issue to execute the circuit.  :class:`MicroCommand` is one entry of that
trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CommandKind(Enum):
    """Kinds of micro-commands."""

    MOVE = "move"
    TURN = "turn"
    GATE = "gate"


@dataclass(frozen=True)
class MicroCommand:
    """One controller command.

    Attributes:
        kind: Move, turn or gate operation.
        start: Start time in microseconds.
        duration: Duration in microseconds.
        qubits: Qubits involved (one for moves/turns, one or two for gates).
        resource: A printable identifier of the fabric resource involved — the
            channel being traversed, the junction turned in, or the trap the
            gate executes in.
        instruction_index: Index of the circuit instruction this command
            belongs to.
        detail: Free-form detail (gate mnemonic, number of cells moved, ...).
    """

    kind: CommandKind
    start: float
    duration: float
    qubits: tuple[str, ...]
    resource: str
    instruction_index: int
    detail: str = ""

    @property
    def end(self) -> float:
        """Completion time of the command."""
        return self.start + self.duration

    def __str__(self) -> str:
        who = ",".join(self.qubits)
        return (
            f"[{self.start:10.1f} +{self.duration:7.1f}] {self.kind.value.upper():4s} "
            f"{who:12s} @ {self.resource} {self.detail}"
        )
