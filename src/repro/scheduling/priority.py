"""Scheduling priority functions (legacy enum surface).

.. deprecated::
    The closed :class:`PriorityPolicy` enum is kept as a thin alias for
    backward compatibility.  The canonical scheduling surface is the
    :class:`~repro.scheduling.policies.SchedulingPolicy` strategy objects
    registered in :data:`repro.pipeline.schedulers.SCHEDULERS`; new code
    (and anything configurable from specs, sweeps, the CLI or the service)
    selects a scheduler by registry name.

Four policies are provided, matching the tools discussed in the paper:

* ``QSPR`` — the paper's policy (Section III): number of dependent operations
  plus the longest delay path from the instruction to the end of the QIDG.
* ``QUALE_ALAP`` — QUALE extracts instructions by traversing the QIDG
  backward in an as-late-as-possible manner; instructions with the smallest
  ALAP level (i.e. the least slack before they hold up the circuit) come
  first.
* ``QPOS_DEPENDENTS`` — QPOS issues in ASAP fashion with the initial priority
  of an instruction set to the number of instructions that depend on it.
* ``QPOS_PATH_DELAY`` — the tweak of reference [5]: the priority is the total
  delay of the dependent instructions, i.e. the longest downstream path delay.
"""

from __future__ import annotations

from enum import Enum

from repro.qidg.graph import QIDG
from repro.scheduling.policies import (
    QposDependentsPolicy,
    QposPathDelayPolicy,
    QsprPolicy,
    QualeAlapPolicy,
    SchedulingPolicy,
)
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


class PriorityPolicy(Enum):
    """Available priority functions (deprecated alias).

    The enum values equal the registry names of the corresponding
    :class:`~repro.scheduling.policies.SchedulingPolicy` entries in
    :data:`repro.pipeline.schedulers.SCHEDULERS`, so the two surfaces are
    interchangeable wherever a scheduler is selected.
    """

    QSPR = "qspr"
    QUALE_ALAP = "quale-alap"
    QPOS_DEPENDENTS = "qpos-dependents"
    QPOS_PATH_DELAY = "qpos-path-delay"

    @property
    def policy(self) -> SchedulingPolicy:
        """The strategy object this enum member aliases."""
        return _ENUM_POLICIES[self]


#: Enum member → strategy instance (the enum is a closed view of these four).
_ENUM_POLICIES: dict[PriorityPolicy, SchedulingPolicy] = {
    PriorityPolicy.QSPR: QsprPolicy(),
    PriorityPolicy.QUALE_ALAP: QualeAlapPolicy(),
    PriorityPolicy.QPOS_DEPENDENTS: QposDependentsPolicy(),
    PriorityPolicy.QPOS_PATH_DELAY: QposPathDelayPolicy(),
}


def compute_priorities(
    qidg: QIDG,
    policy: PriorityPolicy | SchedulingPolicy = PriorityPolicy.QSPR,
    technology: TechnologyParams = PAPER_TECHNOLOGY,
) -> dict[int, float]:
    """Compute the static priority of every instruction under ``policy``.

    Accepts either a legacy :class:`PriorityPolicy` member or a
    :class:`~repro.scheduling.policies.SchedulingPolicy` object; the actual
    computation lives on the policy classes.  Ties are broken by the
    simulator in favour of lower instruction indices (program order), which
    keeps runs deterministic.
    """
    if isinstance(policy, PriorityPolicy):
        return policy.policy.priorities(qidg, technology)
    if isinstance(policy, SchedulingPolicy):
        return policy.priorities(qidg, technology)
    raise ValueError(f"unknown priority policy: {policy!r}")
