"""Scheduling priority functions.

Higher priority values are issued first.  Four policies are provided,
matching the tools discussed in the paper:

* ``QSPR`` — the paper's policy (Section III): number of dependent operations
  plus the longest delay path from the instruction to the end of the QIDG.
* ``QUALE_ALAP`` — QUALE extracts instructions by traversing the QIDG
  backward in an as-late-as-possible manner; instructions with the smallest
  ALAP level (i.e. the least slack before they hold up the circuit) come
  first.
* ``QPOS_DEPENDENTS`` — QPOS issues in ASAP fashion with the initial priority
  of an instruction set to the number of instructions that depend on it.
* ``QPOS_PATH_DELAY`` — the tweak of reference [5]: the priority is the total
  delay of the dependent instructions, i.e. the longest downstream path delay.
"""

from __future__ import annotations

from enum import Enum

from repro.qidg.analysis import alap_levels, descendant_counts, longest_path_to_sink
from repro.qidg.graph import QIDG
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


class PriorityPolicy(Enum):
    """Available priority functions."""

    QSPR = "qspr"
    QUALE_ALAP = "quale-alap"
    QPOS_DEPENDENTS = "qpos-dependents"
    QPOS_PATH_DELAY = "qpos-path-delay"


def compute_priorities(
    qidg: QIDG,
    policy: PriorityPolicy = PriorityPolicy.QSPR,
    technology: TechnologyParams = PAPER_TECHNOLOGY,
) -> dict[int, float]:
    """Compute the static priority of every instruction under ``policy``.

    Priorities only depend on the dependency graph and the gate delays, so
    they are computed once per mapping run.  Ties are broken by the simulator
    in favour of lower instruction indices (program order), which keeps runs
    deterministic.
    """
    if policy is PriorityPolicy.QSPR:
        counts = descendant_counts(qidg)
        paths = longest_path_to_sink(qidg, technology)
        return {node: counts[node] + paths[node] for node in qidg.graph.nodes}
    if policy is PriorityPolicy.QUALE_ALAP:
        levels = alap_levels(qidg)
        return {node: -float(level) for node, level in levels.items()}
    if policy is PriorityPolicy.QPOS_DEPENDENTS:
        return {node: float(count) for node, count in descendant_counts(qidg).items()}
    if policy is PriorityPolicy.QPOS_PATH_DELAY:
        paths = longest_path_to_sink(qidg, technology)
        own_delay = {
            node: technology.gate_delay(
                qidg.instruction(node).arity,
                is_measurement=qidg.instruction(node).is_measurement,
            )
            for node in qidg.graph.nodes
        }
        # "Total delay of dependent instructions": the downstream path delay,
        # excluding the instruction's own delay.
        return {node: paths[node] - own_delay[node] for node in qidg.graph.nodes}
    raise ValueError(f"unknown priority policy: {policy!r}")
