"""Instruction scheduling: priorities, readiness tracking and the busy queue.

The paper's scheduling problem is Minimum-Latency Resource-Constrained (MLRC)
scheduling where the resources are channel/junction capacities and the
instruction delays only become known after placement and routing.  The
scheduler is therefore interleaved with the router inside the event-driven
simulator (:mod:`repro.sim.engine`); this package provides the pieces the
simulator composes:

* :mod:`repro.scheduling.priority` — the priority functions of QSPR, QUALE,
  QPOS and the QPOS variant of reference [5].
* :mod:`repro.scheduling.ready` — dependency bookkeeping (which instructions
  are ready to issue).
* :mod:`repro.scheduling.busy_queue` — instructions that were ready but could
  not be routed; they are retried when channel occupancy changes.
"""

from repro.scheduling.priority import PriorityPolicy, compute_priorities
from repro.scheduling.ready import DependencyTracker
from repro.scheduling.busy_queue import BusyQueue

__all__ = [
    "PriorityPolicy",
    "compute_priorities",
    "DependencyTracker",
    "BusyQueue",
]
