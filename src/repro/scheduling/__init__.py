"""Instruction scheduling: priorities, readiness tracking and the busy queue.

The paper's scheduling problem is Minimum-Latency Resource-Constrained (MLRC)
scheduling where the resources are channel/junction capacities and the
instruction delays only become known after placement and routing.  The
scheduler is therefore interleaved with the router inside the event-driven
simulator (:mod:`repro.sim.engine`); this package provides the pieces the
simulator composes:

* :mod:`repro.scheduling.policies` — the :class:`SchedulingPolicy` strategy
  objects of QSPR, QUALE, QPOS and the QPOS variant of reference [5]; the
  pluggable scheduler surface registered in
  :data:`repro.pipeline.schedulers.SCHEDULERS`.
* :mod:`repro.scheduling.priority` — the legacy ``PriorityPolicy`` enum, a
  thin deprecated alias over the policy objects.
* :mod:`repro.scheduling.ready` — dependency bookkeeping (which instructions
  are ready to issue).
* :mod:`repro.scheduling.busy_queue` — instructions that were ready but could
  not be routed; they are retried when the channels that blocked them are
  released (wake-sets keyed by channel).
"""

from repro.scheduling.policies import (
    QposDependentsPolicy,
    QposPathDelayPolicy,
    QsprPolicy,
    QualeAlapPolicy,
    SchedulingPolicy,
)
from repro.scheduling.priority import PriorityPolicy, compute_priorities
from repro.scheduling.ready import DependencyTracker
from repro.scheduling.busy_queue import BusyQueue

__all__ = [
    "PriorityPolicy",
    "QposDependentsPolicy",
    "QposPathDelayPolicy",
    "QsprPolicy",
    "QualeAlapPolicy",
    "SchedulingPolicy",
    "compute_priorities",
    "DependencyTracker",
    "BusyQueue",
]
