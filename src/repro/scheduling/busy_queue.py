"""The busy queue: ready-but-unroutable instructions.

When the router cannot find a finite-weight path for a ready instruction
(all candidate channels are at capacity), the instruction is parked here and
retried whenever the status of some channel changes (a qubit-exits-channel
event).  The time an instruction spends in this queue is the paper's
``T_congestion`` contribution to its delay (Eq. 1).
"""

from __future__ import annotations

from repro.errors import SchedulingError


class BusyQueue:
    """Set of parked instructions with the time they were first parked."""

    def __init__(self) -> None:
        self._parked: dict[int, float] = {}
        self._total_entries = 0

    def park(self, index: int, time: float) -> None:
        """Add ``index`` to the queue at ``time`` (idempotent for re-parks)."""
        if index not in self._parked:
            self._parked[index] = time
            self._total_entries += 1

    def remove(self, index: int) -> float:
        """Remove ``index`` and return the time it was parked.

        Raises:
            SchedulingError: If the instruction is not in the queue.
        """
        try:
            return self._parked.pop(index)
        except KeyError as exc:
            raise SchedulingError(f"instruction {index} is not in the busy queue") from exc

    def __contains__(self, index: int) -> bool:
        return index in self._parked

    def __len__(self) -> int:
        return len(self._parked)

    def __bool__(self) -> bool:
        return bool(self._parked)

    @property
    def instructions(self) -> list[int]:
        """Parked instruction indices in park order."""
        return list(self._parked)

    @property
    def total_entries(self) -> int:
        """How many times any instruction has been parked (a congestion metric)."""
        return self._total_entries

    def parked_since(self, index: int) -> float:
        """Time at which ``index`` was parked."""
        if index not in self._parked:
            raise SchedulingError(f"instruction {index} is not in the busy queue")
        return self._parked[index]
