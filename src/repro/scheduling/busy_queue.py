"""The busy queue: ready-but-unroutable instructions.

When the router cannot find a finite-weight path for a ready instruction
(all candidate channels are at capacity), the instruction is parked here and
retried whenever the status of some channel changes (a qubit-exits-channel
event).  The time an instruction spends in this queue is the paper's
``T_congestion`` contribution to its delay (Eq. 1).

Retries are driven by **wake-sets keyed by tagged resources**: a parked
instruction records the resources that blocked its last routing attempt
(:meth:`BusyQueue.block_on`), and the engine wakes only the instructions
parked on a resource that actually changed (:meth:`BusyQueue.wake`) instead
of invalidating the whole queue.  The queue itself treats keys as opaque
hashables; the router emits four namespaces (see
:mod:`repro.routing.router`):

* ``("ch", channel_id)`` — a channel on the failure cut; woken when a qubit
  exits that channel.
* ``("trap", trap_id)`` — a meeting-trap candidate skipped because it was
  occupied; woken when an issuing instruction vacates that trap.
* ``("trapc", trap_id)`` — a free candidate that was tried and found
  unreachable; woken when an issue *reserves* that trap, which shifts the
  candidate horizon.
* ``ANY_CONGESTION_CHANGE`` — the collapse sentinel used when the precise
  blocker set would be unbounded (or exceeds ``MAX_BLOCKER_KEYS``); woken on
  every release and every issue, so collapsing is always safe.

Events that change the fabric in ways no key identifies wake everything
(:meth:`BusyQueue.wake_all`).  An instruction whose recorded blockers are
all still standing is guaranteed to fail routing again, so the issue loop
skips it (:meth:`BusyQueue.needs_retry`).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.errors import SchedulingError


class BusyQueue:
    """Set of parked instructions with the time they were first parked."""

    def __init__(self) -> None:
        self._parked: dict[int, float] = {}
        self._total_entries = 0
        # Wake-set bookkeeping: a parked instruction appears in `_blockers`
        # exactly while its last routing failure is known to still stand;
        # `_wake` is the reverse index (resource → instructions parked on
        # it).  Reverse-index entries are cleaned lazily — waking an
        # instruction that would fail anyway is harmless (routing is pure),
        # whereas never waking a routable one would change schedules.
        self._blockers: dict[int, frozenset[Hashable]] = {}
        self._wake: dict[Hashable, set[int]] = {}

    def park(self, index: int, time: float) -> None:
        """Add ``index`` to the queue at ``time`` (idempotent for re-parks)."""
        if index not in self._parked:
            self._parked[index] = time
            self._total_entries += 1

    def remove(self, index: int) -> float:
        """Remove ``index`` and return the time it was parked.

        Raises:
            SchedulingError: If the instruction is not in the queue.
        """
        try:
            parked_at = self._parked.pop(index)
        except KeyError as exc:
            raise SchedulingError(f"instruction {index} is not in the busy queue") from exc
        self._blockers.pop(index, None)
        return parked_at

    # ------------------------------------------------------------------
    # Wake-sets keyed by resource
    # ------------------------------------------------------------------
    def block_on(self, index: int, resources: Iterable[Hashable]) -> None:
        """Record the resources that blocked ``index``'s last routing attempt.

        Until one of them is released (:meth:`wake`) or the fabric changes in
        a way no resource identifies (:meth:`wake_all`), the instruction is
        known to be unroutable and :meth:`needs_retry` returns ``False``.

        Raises:
            SchedulingError: If the instruction is not parked.
        """
        if index not in self._parked:
            raise SchedulingError(f"instruction {index} is not in the busy queue")
        blockers = frozenset(resources)
        self._blockers[index] = blockers
        for resource in blockers:
            self._wake.setdefault(resource, set()).add(index)

    def needs_retry(self, index: int) -> bool:
        """Whether a routing retry of parked ``index`` could succeed.

        ``False`` only while the blockers recorded by :meth:`block_on` are
        all known to still stand; instructions without recorded blockers are
        always retried.
        """
        return index not in self._blockers

    def wake(self, resource: Hashable) -> list[int]:
        """Release ``resource``: wake the instructions parked on it.

        Returns the woken instruction indices (mainly for tests/metrics).
        """
        woken: list[int] = []
        for index in self._wake.pop(resource, ()):
            # Lazy reverse-index cleanup: only instructions whose *current*
            # blocker set names the resource are actually asleep on it.
            if resource in self._blockers.get(index, ()):
                del self._blockers[index]
                woken.append(index)
        return woken

    def wake_all(self) -> None:
        """Invalidate every recorded blocker set (fabric-wide state change)."""
        self._blockers.clear()
        self._wake.clear()

    def __contains__(self, index: int) -> bool:
        return index in self._parked

    def __len__(self) -> int:
        return len(self._parked)

    def __bool__(self) -> bool:
        return bool(self._parked)

    @property
    def instructions(self) -> list[int]:
        """Parked instruction indices in park order."""
        return list(self._parked)

    @property
    def total_entries(self) -> int:
        """How many times any instruction has been parked (a congestion metric)."""
        return self._total_entries

    def parked_since(self, index: int) -> float:
        """Time at which ``index`` was parked."""
        if index not in self._parked:
            raise SchedulingError(f"instruction {index} is not in the busy queue")
        return self._parked[index]
