"""Scheduling policies as first-class strategy objects.

A :class:`SchedulingPolicy` owns everything the simulator needs from the
scheduler side of a mapping run:

* the *static* priority of every instruction (:meth:`SchedulingPolicy.priorities`),
  computed once per run from the QIDG and the technology's gate delays;
* the *candidate ordering* of the issue loop
  (:meth:`SchedulingPolicy.order`): given the current pool of issueable
  instructions (ready plus busy-parked), return them most-preferred first.
  The default orders by descending priority with a :meth:`tie_break` hook
  (program order, keeping runs deterministic); policies with dynamic
  tie-breaking override one of the two.

The four paper policies are implemented here and registered in
:data:`repro.pipeline.schedulers.SCHEDULERS`, which is how every layer
(options, specs, sweeps, CLI, service) selects them by name.  Third-party
policies subclass :class:`SchedulingPolicy` and register the same way::

    from repro.pipeline import SCHEDULERS
    from repro.scheduling.policies import SchedulingPolicy

    @SCHEDULERS.register("fifo")
    class FifoPolicy(SchedulingPolicy):
        name = "fifo"

        def priorities(self, qidg, technology):
            return {node: 0.0 for node in qidg.graph.nodes}

The legacy :class:`~repro.scheduling.priority.PriorityPolicy` enum remains a
thin deprecated alias over these classes.
"""

from __future__ import annotations

from typing import Iterable

from repro.qidg.analysis import alap_levels, descendant_counts, longest_path_to_sink
from repro.qidg.graph import QIDG
from repro.technology import PAPER_TECHNOLOGY, TechnologyParams


class SchedulingPolicy:
    """Strategy protocol of a scheduling policy.

    Attributes:
        name: Registry name of the policy (what specs, sweeps and the CLI
            select it by; also what reports print).
    """

    name: str = "?"

    def priorities(
        self, qidg: QIDG, technology: TechnologyParams = PAPER_TECHNOLOGY
    ) -> dict[int, float]:
        """Static priority of every instruction (higher issues first).

        Priorities only depend on the dependency graph and the gate delays,
        so they are computed once per mapping run.
        """
        raise NotImplementedError

    def tie_break(self, index: int) -> float:
        """Secondary sort key among equal-priority instructions (lower first).

        The default is program order, which keeps runs deterministic; dynamic
        policies may override this (or :meth:`order` wholesale).
        """
        return index

    def order(self, pool: Iterable[int], priorities: dict[int, float]) -> list[int]:
        """Candidate issue order over ``pool``, most preferred first.

        The simulator calls this whenever the pool's membership changes; the
        default is a static sort by descending priority with
        :meth:`tie_break` deciding ties.
        """
        return sorted(pool, key=lambda index: (-priorities[index], self.tie_break(index)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class QsprPolicy(SchedulingPolicy):
    """The paper's policy (Section III): dependents plus longest path delay."""

    name = "qspr"

    def priorities(
        self, qidg: QIDG, technology: TechnologyParams = PAPER_TECHNOLOGY
    ) -> dict[int, float]:
        counts = descendant_counts(qidg)
        paths = longest_path_to_sink(qidg, technology)
        return {node: counts[node] + paths[node] for node in qidg.graph.nodes}


class QualeAlapPolicy(SchedulingPolicy):
    """QUALE: backward (as-late-as-possible) extraction from the QIDG.

    Instructions with the smallest ALAP level (the least slack before they
    hold up the circuit) come first.
    """

    name = "quale-alap"

    def priorities(
        self, qidg: QIDG, technology: TechnologyParams = PAPER_TECHNOLOGY
    ) -> dict[int, float]:
        levels = alap_levels(qidg)
        return {node: -float(level) for node, level in levels.items()}


class QposDependentsPolicy(SchedulingPolicy):
    """QPOS: ASAP issue with priority = number of dependent instructions."""

    name = "qpos-dependents"

    def priorities(
        self, qidg: QIDG, technology: TechnologyParams = PAPER_TECHNOLOGY
    ) -> dict[int, float]:
        return {node: float(count) for node, count in descendant_counts(qidg).items()}


class QposPathDelayPolicy(SchedulingPolicy):
    """The tweak of reference [5]: priority = total delay of the dependents."""

    name = "qpos-path-delay"

    def priorities(
        self, qidg: QIDG, technology: TechnologyParams = PAPER_TECHNOLOGY
    ) -> dict[int, float]:
        paths = longest_path_to_sink(qidg, technology)
        own_delay = {
            node: technology.gate_delay(
                qidg.instruction(node).arity,
                is_measurement=qidg.instruction(node).is_measurement,
            )
            for node in qidg.graph.nodes
        }
        # "Total delay of dependent instructions": the downstream path delay,
        # excluding the instruction's own delay.
        return {node: paths[node] - own_delay[node] for node in qidg.graph.nodes}


#: The paper's four policies, in the order the paper discusses them.
PAPER_POLICIES: tuple[SchedulingPolicy, ...] = (
    QsprPolicy(),
    QualeAlapPolicy(),
    QposDependentsPolicy(),
    QposPathDelayPolicy(),
)
