"""Dependency bookkeeping for the scheduler.

:class:`DependencyTracker` mirrors the QIDG as mutable "remaining
predecessors" counters: when an instruction finishes, its successors'
counters drop and those reaching zero become ready to issue.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.qidg.graph import QIDG


class DependencyTracker:
    """Tracks which instructions are ready, issued and completed."""

    def __init__(self, qidg: QIDG) -> None:
        self.qidg = qidg
        self._remaining: dict[int, int] = {
            node: qidg.graph.in_degree(node) for node in qidg.graph.nodes
        }
        self._issued: set[int] = set()
        self._completed: set[int] = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def initially_ready(self) -> list[int]:
        """Instructions with no dependencies, in program order."""
        return sorted(node for node, remaining in self._remaining.items() if remaining == 0)

    def is_ready(self, index: int) -> bool:
        """Whether all predecessors of ``index`` have completed."""
        return self._remaining[index] == 0 and index not in self._issued

    def is_issued(self, index: int) -> bool:
        """Whether ``index`` has been issued (it may still be executing)."""
        return index in self._issued

    def is_completed(self, index: int) -> bool:
        """Whether ``index`` has finished executing."""
        return index in self._completed

    @property
    def num_completed(self) -> int:
        """Number of completed instructions."""
        return len(self._completed)

    @property
    def all_completed(self) -> bool:
        """Whether every instruction has completed."""
        return len(self._completed) == len(self._remaining)

    @property
    def outstanding(self) -> list[int]:
        """Instructions not yet completed, in program order."""
        return sorted(set(self._remaining) - self._completed)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mark_issued(self, index: int) -> None:
        """Record that ``index`` has been issued.

        Raises:
            SchedulingError: If the instruction is not ready or was already
                issued.
        """
        if index not in self._remaining:
            raise SchedulingError(f"instruction {index} is not part of the QIDG")
        if self._remaining[index] != 0:
            raise SchedulingError(f"instruction {index} issued before its dependencies completed")
        if index in self._issued:
            raise SchedulingError(f"instruction {index} issued twice")
        self._issued.add(index)

    def mark_completed(self, index: int) -> list[int]:
        """Record completion of ``index`` and return newly ready instructions.

        Raises:
            SchedulingError: If the instruction was not issued or completed
                twice.
        """
        if index not in self._issued:
            raise SchedulingError(f"instruction {index} completed without being issued")
        if index in self._completed:
            raise SchedulingError(f"instruction {index} completed twice")
        self._completed.add(index)
        newly_ready: list[int] = []
        for successor in self.qidg.graph.successors(index):
            self._remaining[successor] -= 1
            if self._remaining[successor] == 0:
                newly_ready.append(successor)
            elif self._remaining[successor] < 0:  # pragma: no cover - defensive
                raise SchedulingError(f"instruction {successor} has negative dependency count")
        return sorted(newly_ready)
